type config = {
  max_expedited_retry : int;
  max_requests_per_loss : int;
  max_replies_per_loss : int;
  max_departed_retry : int;
}

let default_config =
  {
    max_expedited_retry = 12;
    max_requests_per_loss = 200;
    max_replies_per_loss = 16;
    (* Small: a CESRM host may have expedited timers already armed at
       the instant its cached replier departs (those in-flight retries
       are legitimate), but a host that keeps unicasting a ghost past
       that has failed to invalidate the pair. *)
    max_departed_retry = 2;
  }

type violation = { at : float; node : int; invariant : string; detail : string }

type t = {
  config : config;
  network : Net.Network.t option; (* None for an {!assemble}d merge result *)
  (* (node, src, seq) -> detection time, removed on first obtain *)
  pending : (int * int * int, float) Hashtbl.t;
  (* (node, src, seq) -> how many times the member obtained it *)
  obtained : (int * int * int, int) Hashtbl.t;
  (* (requestor, replier) -> consecutive expedited requests unanswered *)
  exp_streak : (int * int, int) Hashtbl.t;
  (* (requestor, replier) -> expedited requests sent while the replier
     was departed (per the membership timeline) *)
  ghost_streak : (int * int, int) Hashtbl.t;
  (* membership timeline, newest first: (at, node, member). Appended as
     churn events fire; consulted with each observation's timestamp so
     the packet-stream checks answer identically whether the stream is
     checked inline (serial tap) or replayed later in timestamp order
     (a sharded run's primary worker). *)
  mutable churn_rev : (float * int * bool) list;
  (* (node, src, seq) -> requests this member sent for the loss *)
  requests : (int * int * int, int) Hashtbl.t;
  (* (replier, src, seq) -> replies this member sent for the loss *)
  replies : (int * int * int, int) Hashtbl.t;
  (* bounded invariants report once per offending key *)
  latched : (string * int * int, unit) Hashtbl.t;
  mutable violations_rev : violation list;
  mutable n_violations : int;
  mutable finalized : bool;
}

let violate t ~at ~node ~invariant detail =
  t.violations_rev <- { at; node; invariant; detail } :: t.violations_rev;
  t.n_violations <- t.n_violations + 1

(* Bounded invariants latch per (invariant, offending key) so a broken
   loop reports once, not once per packet. *)
let latch_once t ~invariant ~a ~b f =
  if not (Hashtbl.mem t.latched (invariant, a, b)) then begin
    Hashtbl.replace t.latched (invariant, a, b) ();
    f ()
  end

let note_membership t ~node ~at ~member = t.churn_rev <- (at, node, member) :: t.churn_rev

(* Whether [node] was a member strictly before [at] per the timeline
   (default: yes). Strict comparison keeps serial and sharded checks
   identical: a packet sent at the very instant of a membership flip
   is judged by the pre-flip state in both modes, independent of
   same-time timer/tap ordering inside the engine. *)
let member_at t node ~at =
  let rec scan = function
    | [] -> true
    | (entry_at, n, member) :: rest ->
        if n = node && entry_at < at then member else scan rest
  in
  scan t.churn_rev

(* The packet-stream checks, with the observation time explicit: a
   serial run's tap passes the engine clock, a sharded run's primary
   worker replays the merged cross-shard tap stream in timestamp
   order. *)
let observe t ~at ~from:_ (p : Net.Packet.t) =
  let config = t.config in
  match p.payload with
  | Net.Packet.Exp_request { requestor; replier; src; seq; _ } ->
      let n = 1 + Option.value ~default:0 (Hashtbl.find_opt t.exp_streak (requestor, replier)) in
      Hashtbl.replace t.exp_streak (requestor, replier) n;
      if n > config.max_expedited_retry then
        latch_once t ~invariant:"expedited-retry" ~a:requestor ~b:replier (fun () ->
            violate t ~at ~node:requestor ~invariant:"expedited-retry"
              (Printf.sprintf
                 "%d consecutive expedited requests to replier %d without hearing from it \
                  (last for src %d seq %d)"
                 n replier src seq));
      if not (member_at t replier ~at) then begin
        let g =
          1 + Option.value ~default:0 (Hashtbl.find_opt t.ghost_streak (requestor, replier))
        in
        Hashtbl.replace t.ghost_streak (requestor, replier) g;
        if g > config.max_departed_retry then
          latch_once t ~invariant:"expedited-retry-departed" ~a:requestor ~b:replier (fun () ->
              violate t ~at ~node:requestor ~invariant:"expedited-retry-departed"
                (Printf.sprintf
                   "%d expedited requests to replier %d after it left the group (last for \
                    src %d seq %d) — the cached pair was never invalidated"
                   g replier src seq))
      end
      else Hashtbl.remove t.ghost_streak (requestor, replier)
  | Net.Packet.Reply { requestor = _; replier; src; seq; expedited = _; _ } ->
      (* Any reply from [replier] is evidence it is alive; the
         retry bound targets hammering a *silent* replier. A live
         replier can legitimately draw more expedited requests than
         the bound without answering any (post-heal it may lack the
         very packets it is asked for, while its other replies keep
         it cached), so every streak aimed at it resets here. *)
      let stale =
        Hashtbl.fold
          (fun ((_, rp) as k) _ acc -> if rp = replier then k :: acc else acc)
          t.exp_streak []
      in
      List.iter (Hashtbl.remove t.exp_streak) stale;
      let stale_ghost =
        Hashtbl.fold
          (fun ((_, rp) as k) _ acc -> if rp = replier then k :: acc else acc)
          t.ghost_streak []
      in
      List.iter (Hashtbl.remove t.ghost_streak) stale_ghost;
      let key = (replier, src, seq) in
      let n = 1 + Option.value ~default:0 (Hashtbl.find_opt t.replies key) in
      Hashtbl.replace t.replies key n;
      if n > config.max_replies_per_loss then
        latch_once t ~invariant:"reply-suppression" ~a:replier ~b:((src * 1_000_000) + seq)
          (fun () ->
            violate t ~at ~node:replier ~invariant:"reply-suppression"
              (Printf.sprintf "%d replies for src %d seq %d" n src seq))
  | Net.Packet.Request { requestor; src; seq; _ } ->
      let key = (requestor, src, seq) in
      let n = 1 + Option.value ~default:0 (Hashtbl.find_opt t.requests key) in
      Hashtbl.replace t.requests key n;
      if n > config.max_requests_per_loss then
        latch_once t ~invariant:"request-suppression" ~a:requestor ~b:((src * 1_000_000) + seq)
          (fun () ->
            violate t ~at ~node:requestor ~invariant:"request-suppression"
              (Printf.sprintf "%d requests for src %d seq %d" n src seq))
  | Net.Packet.Data _ | Net.Packet.Session _ -> ()

let make ?(config = default_config) network =
  {
    config;
    network;
    pending = Hashtbl.create 256;
    obtained = Hashtbl.create 1024;
    exp_streak = Hashtbl.create 32;
    ghost_streak = Hashtbl.create 8;
    churn_rev = [];
    requests = Hashtbl.create 256;
    replies = Hashtbl.create 256;
    latched = Hashtbl.create 32;
    violations_rev = [];
    n_violations = 0;
    finalized = false;
  }

let create_detached ?config ~network () = make ?config (Some network)

let now t =
  match t.network with
  | Some network -> Sim.Engine.now (Net.Network.engine network)
  | None -> invalid_arg "Oracle: no network (assembled result)"

let create ?config ~network () =
  let t = make ?config (Some network) in
  Net.Network.add_tap network (fun ~from p -> observe t ~at:(now t) ~from p);
  t

let attach_host t host =
  let hooks = Srm.Host.hooks host in
  let node = Srm.Host.self host in
  let prev_detect = hooks.Srm.Host.on_loss_detected in
  hooks.Srm.Host.on_loss_detected <-
    (fun ~src ~seq ->
      if not (Hashtbl.mem t.obtained (node, src, seq)) then
        Hashtbl.replace t.pending (node, src, seq) (now t);
      prev_detect ~src ~seq);
  let prev_obtained = hooks.Srm.Host.on_packet_obtained in
  hooks.Srm.Host.on_packet_obtained <-
    (fun ~src ~seq ~expedited ->
      Hashtbl.remove t.pending (node, src, seq);
      let n = 1 + Option.value ~default:0 (Hashtbl.find_opt t.obtained (node, src, seq)) in
      Hashtbl.replace t.obtained (node, src, seq) n;
      if n = 2 then
        violate t ~at:(now t) ~node ~invariant:"duplicate-delivery"
          (Printf.sprintf "src %d seq %d delivered to the application again" src seq);
      (* This hook fires inline on whichever worker owns the host, in
         both serial and sharded runs, so the live membership flag is
         the correct (and mode-consistent) reference here. *)
      (match t.network with
      | Some network when not (Net.Network.is_member network node) ->
          latch_once t ~invariant:"deliver-to-departed" ~a:node ~b:src (fun () ->
              violate t ~at:(now t) ~node ~invariant:"deliver-to-departed"
                (Printf.sprintf
                   "src %d seq %d delivered to node %d, which is not in the group" src seq
                   node))
      | _ -> ());
      prev_obtained ~src ~seq ~expedited)

(* Losses still pending for members alive at the end of the run — the
   raw material of the liveness check. A shard worker exports these so
   the coordinator can evaluate liveness over the whole group. *)
let pending_losses t =
  let network = Option.get t.network in
  Hashtbl.fold
    (fun (node, src, seq) detected_at acc ->
      if Net.Network.is_enabled network node && Net.Network.is_member network node then
        (node, src, seq, detected_at) :: acc
      else acc)
    t.pending []

(* A departing member's outstanding losses are forgiven: it was not
   present for their full recovery window, so liveness does not apply.
   Called by the runner's on_leave wiring (on the worker owning the
   node in a sharded run — the only worker whose oracle holds pending
   entries for it). *)
let forget_node t ~node =
  let stale =
    Hashtbl.fold (fun ((n, _, _) as k) _ acc -> if n = node then k :: acc else acc) t.pending []
  in
  List.iter (Hashtbl.remove t.pending) stale

let liveness_violations ~at still_missing =
  List.map
    (fun (node, src, seq, detected_at) ->
      {
        at;
        node;
        invariant = "liveness";
        detail =
          Printf.sprintf "src %d seq %d detected lost at t=%.3f, never repaired" src seq
            detected_at;
      })
    (List.sort compare still_missing)

let finalize t =
  if not t.finalized then begin
    t.finalized <- true;
    List.iter
      (fun v ->
        t.violations_rev <- v :: t.violations_rev;
        t.n_violations <- t.n_violations + 1)
      (liveness_violations ~at:(now t) (pending_losses t))
  end

(* A results-only oracle holding an externally merged violation list
   (chronological) — how a sharded run's coordinator reassembles the
   serial artifact from per-worker pieces. *)
let assemble ~violations =
  let t = make None in
  t.violations_rev <- List.rev violations;
  t.n_violations <- List.length violations;
  t.finalized <- true;
  t

let violations t = List.rev t.violations_rev

let n_violations t = t.n_violations

let clean t = t.n_violations = 0

let to_json t =
  let open Obs.Json in
  Obj
    [
      ( "violations",
        Arr
          (List.map
             (fun v ->
               Obj
                 [
                   ("at", Num v.at);
                   ("node", int v.node);
                   ("invariant", Str v.invariant);
                   ("detail", Str v.detail);
                 ])
             (violations t)) );
      ("count", int t.n_violations);
    ]

let pp ppf t =
  if clean t then Format.fprintf ppf "oracle: clean"
  else begin
    Format.fprintf ppf "oracle: %d violation(s)" t.n_violations;
    List.iter
      (fun v ->
        Format.fprintf ppf "@.  t=%.3f node %d [%s] %s" v.at v.node v.invariant v.detail)
      (violations t)
  end
