type config = {
  max_expedited_retry : int;
  max_requests_per_loss : int;
  max_replies_per_loss : int;
}

let default_config = { max_expedited_retry = 12; max_requests_per_loss = 200; max_replies_per_loss = 16 }

type violation = { at : float; node : int; invariant : string; detail : string }

type t = {
  config : config;
  network : Net.Network.t option; (* None for an {!assemble}d merge result *)
  (* (node, src, seq) -> detection time, removed on first obtain *)
  pending : (int * int * int, float) Hashtbl.t;
  (* (node, src, seq) -> how many times the member obtained it *)
  obtained : (int * int * int, int) Hashtbl.t;
  (* (requestor, replier) -> consecutive expedited requests unanswered *)
  exp_streak : (int * int, int) Hashtbl.t;
  (* (node, src, seq) -> requests this member sent for the loss *)
  requests : (int * int * int, int) Hashtbl.t;
  (* (replier, src, seq) -> replies this member sent for the loss *)
  replies : (int * int * int, int) Hashtbl.t;
  (* bounded invariants report once per offending key *)
  latched : (string * int * int, unit) Hashtbl.t;
  mutable violations_rev : violation list;
  mutable n_violations : int;
  mutable finalized : bool;
}

let violate t ~at ~node ~invariant detail =
  t.violations_rev <- { at; node; invariant; detail } :: t.violations_rev;
  t.n_violations <- t.n_violations + 1

(* Bounded invariants latch per (invariant, offending key) so a broken
   loop reports once, not once per packet. *)
let latch_once t ~invariant ~a ~b f =
  if not (Hashtbl.mem t.latched (invariant, a, b)) then begin
    Hashtbl.replace t.latched (invariant, a, b) ();
    f ()
  end

(* The packet-stream checks, with the observation time explicit: a
   serial run's tap passes the engine clock, a sharded run's primary
   worker replays the merged cross-shard tap stream in timestamp
   order. *)
let observe t ~at ~from:_ (p : Net.Packet.t) =
  let config = t.config in
  match p.payload with
  | Net.Packet.Exp_request { requestor; replier; src; seq; _ } ->
      let n = 1 + Option.value ~default:0 (Hashtbl.find_opt t.exp_streak (requestor, replier)) in
      Hashtbl.replace t.exp_streak (requestor, replier) n;
      if n > config.max_expedited_retry then
        latch_once t ~invariant:"expedited-retry" ~a:requestor ~b:replier (fun () ->
            violate t ~at ~node:requestor ~invariant:"expedited-retry"
              (Printf.sprintf
                 "%d consecutive expedited requests to replier %d without hearing from it \
                  (last for src %d seq %d)"
                 n replier src seq))
  | Net.Packet.Reply { requestor = _; replier; src; seq; expedited = _; _ } ->
      (* Any reply from [replier] is evidence it is alive; the
         retry bound targets hammering a *silent* replier. A live
         replier can legitimately draw more expedited requests than
         the bound without answering any (post-heal it may lack the
         very packets it is asked for, while its other replies keep
         it cached), so every streak aimed at it resets here. *)
      let stale =
        Hashtbl.fold
          (fun ((_, rp) as k) _ acc -> if rp = replier then k :: acc else acc)
          t.exp_streak []
      in
      List.iter (Hashtbl.remove t.exp_streak) stale;
      let key = (replier, src, seq) in
      let n = 1 + Option.value ~default:0 (Hashtbl.find_opt t.replies key) in
      Hashtbl.replace t.replies key n;
      if n > config.max_replies_per_loss then
        latch_once t ~invariant:"reply-suppression" ~a:replier ~b:((src * 1_000_000) + seq)
          (fun () ->
            violate t ~at ~node:replier ~invariant:"reply-suppression"
              (Printf.sprintf "%d replies for src %d seq %d" n src seq))
  | Net.Packet.Request { requestor; src; seq; _ } ->
      let key = (requestor, src, seq) in
      let n = 1 + Option.value ~default:0 (Hashtbl.find_opt t.requests key) in
      Hashtbl.replace t.requests key n;
      if n > config.max_requests_per_loss then
        latch_once t ~invariant:"request-suppression" ~a:requestor ~b:((src * 1_000_000) + seq)
          (fun () ->
            violate t ~at ~node:requestor ~invariant:"request-suppression"
              (Printf.sprintf "%d requests for src %d seq %d" n src seq))
  | Net.Packet.Data _ | Net.Packet.Session _ -> ()

let make ?(config = default_config) network =
  {
    config;
    network;
    pending = Hashtbl.create 256;
    obtained = Hashtbl.create 1024;
    exp_streak = Hashtbl.create 32;
    requests = Hashtbl.create 256;
    replies = Hashtbl.create 256;
    latched = Hashtbl.create 32;
    violations_rev = [];
    n_violations = 0;
    finalized = false;
  }

let create_detached ?config ~network () = make ?config (Some network)

let now t =
  match t.network with
  | Some network -> Sim.Engine.now (Net.Network.engine network)
  | None -> invalid_arg "Oracle: no network (assembled result)"

let create ?config ~network () =
  let t = make ?config (Some network) in
  Net.Network.add_tap network (fun ~from p -> observe t ~at:(now t) ~from p);
  t

let attach_host t host =
  let hooks = Srm.Host.hooks host in
  let node = Srm.Host.self host in
  let prev_detect = hooks.Srm.Host.on_loss_detected in
  hooks.Srm.Host.on_loss_detected <-
    (fun ~src ~seq ->
      if not (Hashtbl.mem t.obtained (node, src, seq)) then
        Hashtbl.replace t.pending (node, src, seq) (now t);
      prev_detect ~src ~seq);
  let prev_obtained = hooks.Srm.Host.on_packet_obtained in
  hooks.Srm.Host.on_packet_obtained <-
    (fun ~src ~seq ~expedited ->
      Hashtbl.remove t.pending (node, src, seq);
      let n = 1 + Option.value ~default:0 (Hashtbl.find_opt t.obtained (node, src, seq)) in
      Hashtbl.replace t.obtained (node, src, seq) n;
      if n = 2 then
        violate t ~at:(now t) ~node ~invariant:"duplicate-delivery"
          (Printf.sprintf "src %d seq %d delivered to the application again" src seq);
      prev_obtained ~src ~seq ~expedited)

(* Losses still pending for members alive at the end of the run — the
   raw material of the liveness check. A shard worker exports these so
   the coordinator can evaluate liveness over the whole group. *)
let pending_losses t =
  let network = Option.get t.network in
  Hashtbl.fold
    (fun (node, src, seq) detected_at acc ->
      if Net.Network.is_enabled network node then (node, src, seq, detected_at) :: acc
      else acc)
    t.pending []

let liveness_violations ~at still_missing =
  List.map
    (fun (node, src, seq, detected_at) ->
      {
        at;
        node;
        invariant = "liveness";
        detail =
          Printf.sprintf "src %d seq %d detected lost at t=%.3f, never repaired" src seq
            detected_at;
      })
    (List.sort compare still_missing)

let finalize t =
  if not t.finalized then begin
    t.finalized <- true;
    List.iter
      (fun v ->
        t.violations_rev <- v :: t.violations_rev;
        t.n_violations <- t.n_violations + 1)
      (liveness_violations ~at:(now t) (pending_losses t))
  end

(* A results-only oracle holding an externally merged violation list
   (chronological) — how a sharded run's coordinator reassembles the
   serial artifact from per-worker pieces. *)
let assemble ~violations =
  let t = make None in
  t.violations_rev <- List.rev violations;
  t.n_violations <- List.length violations;
  t.finalized <- true;
  t

let violations t = List.rev t.violations_rev

let n_violations t = t.n_violations

let clean t = t.n_violations = 0

let to_json t =
  let open Obs.Json in
  Obj
    [
      ( "violations",
        Arr
          (List.map
             (fun v ->
               Obj
                 [
                   ("at", Num v.at);
                   ("node", int v.node);
                   ("invariant", Str v.invariant);
                   ("detail", Str v.detail);
                 ])
             (violations t)) );
      ("count", int t.n_violations);
    ]

let pp ppf t =
  if clean t then Format.fprintf ppf "oracle: clean"
  else begin
    Format.fprintf ppf "oracle: %d violation(s)" t.n_violations;
    List.iter
      (fun v ->
        Format.fprintf ppf "@.  t=%.3f node %d [%s] %s" v.at v.node v.invariant v.detail)
      (violations t)
  end
