(** Online protocol-invariant checker for faulted runs.

    The oracle taps the same observation seams the tracer uses — the
    per-member SRM hooks and the network packet tap — and checks, as
    the run unfolds plus once at the end, the invariants that define
    {e graceful degradation} for SRM/CESRM under faults:

    - {b eventual-recovery liveness}: every loss detected by a member
      that is alive at the end of the run has been repaired by then;
    - {b no duplicate delivery}: a member obtains each (src, seq) at
      most once — recovery may duplicate packets on the wire, never to
      the application;
    - {b bounded expedited retry}: CESRM may keep unicasting a cached
      replier only so many consecutive times without {e anything}
      being heard back from it — past the bound it must have fallen
      back to SRM and moved off the silent (dead) replier. Any reply
      from the replier resets the bound: a live replier may
      legitimately draw many expedited requests it cannot answer
      (post-heal it can lack the very packets it is asked for, while
      its other replies keep it cached);
    - {b suppression sanity}: per loss, one member sends at most a
      bounded number of requests and of replies — timers, abstinence
      and back-off must keep working under churn;
    - {b no delivery to departed hosts}: a member that left the group
      must not obtain packets — churn must actually silence it;
    - {b no expedited retries pinned on a departed replier}: once a
      cached replier leaves the group (per the membership timeline fed
      through {!note_membership}), at most a couple of already-armed
      expedited requests may still reach for it — past that bound the
      cached pair should have been invalidated and CESRM fallen back
      to SRM recovery.

    Under churn, liveness is membership-aware: a member is only
    charged for losses whose {e entire} recovery window it was present
    for — a departing member's outstanding losses are forgiven
    ({!forget_node}), late joiners are never charged for packets sent
    before they joined (the runner baselines their detection windows),
    and members outside the group at the end are exempt.

    Violations are recorded as structured events, exported as JSON and
    counted into {!Stats.Counters} (kind [Oracle]) by the runner. A run
    with no violations is {!clean}. *)

type config = {
  max_expedited_retry : int;
      (** consecutive expedited requests to one replier without any
          reply heard from it before the retry is deemed unbounded *)
  max_requests_per_loss : int;  (** per (member, src, seq) *)
  max_replies_per_loss : int;  (** per (replier, src, seq) *)
  max_departed_retry : int;
      (** expedited requests tolerated to a replier {e after it left
          the group} (in-flight timers armed before the leave), per
          (requestor, replier) *)
}

val default_config : config
(** Retry bound 12, requests 200, replies 16 — generous enough that
    only genuinely broken suppression trips them — and departed-retry
    2 (in-flight expedited timers may legitimately straddle a leave;
    a third unicast to the ghost means the pair was never
    invalidated). *)

type violation = {
  at : float;  (** sim time the violation was established *)
  node : int;  (** the member charged with it *)
  invariant : string;
      (** ["liveness"], ["duplicate-delivery"], ["expedited-retry"],
          ["request-suppression"], ["reply-suppression"],
          ["deliver-to-departed"] or ["expedited-retry-departed"] *)
  detail : string;
}

type t

val create : ?config:config -> network:Net.Network.t -> unit -> t
(** Installs a (composing) packet tap on the network; per-member hooks
    are added with {!attach_host}. *)

val create_detached : ?config:config -> network:Net.Network.t -> unit -> t
(** Like {!create} but without the packet tap: feed the stream
    explicitly with {!observe}. A sharded run uses this — the primary
    worker replays the merged cross-shard tap stream in timestamp
    order, while every worker still gets {!attach_host} hooks for its
    own members. *)

val observe : t -> at:float -> from:int -> Net.Packet.t -> unit
(** Check one packet send observed at time [at] (what the tap installed
    by {!create} does with [at] = the engine clock). *)

val note_membership : t -> node:int -> at:float -> member:bool -> unit
(** Append one membership transition to the timeline the packet-stream
    checks consult. The runner feeds a plan's initial absentees (at
    time 0) and every join/leave/rejoin as it fires; entries must
    arrive in non-decreasing time order. A packet observed at the very
    instant of a transition is judged by the {e pre}-transition state,
    which keeps serial and sharded verdicts identical regardless of
    same-time event ordering. *)

val forget_node : t -> node:int -> unit
(** Drop every pending loss charged to [node] — the liveness
    forgiveness a departure earns (the member was not present for
    those losses' full recovery windows). Call from the leave wiring,
    on the worker owning the node. *)

val pending_losses : t -> (int * int * int * float) list
(** [(node, src, seq, detected_at)] for every loss still unrepaired at
    a member currently enabled {e and in the group} — the raw material
    of the liveness check, exported so a sharded run's coordinator can
    evaluate liveness over the whole group. Unsorted. *)

val liveness_violations : at:float -> (int * int * int * float) list -> violation list
(** The liveness violations {!finalize} would record at time [at] for
    the given pending losses (sorted canonically). *)

val assemble : violations:violation list -> t
(** A results-only oracle carrying an externally merged, chronological
    violation list: {!violations}, {!n_violations}, {!clean},
    {!to_json} and {!pp} work; {!finalize} is a no-op; {!attach_host}
    and {!observe} must not be used. *)

val attach_host : t -> Srm.Host.t -> unit
(** Wrap the member's hooks (composing with whatever is installed —
    CESRM's own hooks keep running). Call once per member, after the
    protocol deployed. *)

val finalize : t -> unit
(** Evaluate end-of-run invariants (liveness). Idempotent; call after
    [Sim.Engine.run] returns. Members disabled (crashed) at the end are
    exempt from liveness. *)

val violations : t -> violation list
(** Chronological. Implies {!finalize} has run for end-of-run checks
    only if it was called. *)

val n_violations : t -> int

val clean : t -> bool

val to_json : t -> Obs.Json.t
(** [{"violations": [{"at", "node", "invariant", "detail"}, ...],
    "count": n}]. *)

val pp : Format.formatter -> t -> unit
(** One line per violation, for CLI output. *)
