(** Declarative, deterministic fault plans.

    A plan is a named list of timed fault events against a run's
    topology: link outages, per-link delay jitter (which reorders) and
    duplication windows, host crash/restart with soft-state loss, and
    partition/heal of whole subtrees. Times are absolute sim seconds —
    the same plan on the same seed replays identically, so faulted runs
    stay pure functions of (trace, seed, plan).

    {!compile} lowers a plan onto a concrete run: window events install
    {!Net.Network} perturbation windows (checked against link {e
    crossing} times, so packets already in flight when an outage opens
    are swallowed by it), and crash/restart events become
    {!Sim.Engine} timers that toggle {!Net.Network.set_enabled} and
    invoke the caller's soft-state-loss callbacks. *)

type event =
  | Link_down of { link : int; from_ : float; until : float }
      (** every crossing of [link] (either direction) inside
          [\[from_, until)] is dropped *)
  | Link_jitter of { link : int; from_ : float; until : float; max_jitter : float }
      (** crossings arrive up to [max_jitter] seconds late (uniform);
          enough jitter reorders packets on the link *)
  | Link_dup of { link : int; from_ : float; until : float }
      (** crossings deliver a duplicate copy one extra propagation
          delay later *)
  | Crash of { node : int; at : float; restart_at : float option }
      (** the member on [node] crashes at [at] — receives nothing,
          transmits nothing, and loses all soft state (caches, session
          estimates, scheduled timers) — and, when [restart_at] is
          given, comes back up then *)
  | Partition of { root : int; from_ : float; until : float }
      (** the whole subtree under (and including) [root] is cut off
          from the rest of the tree for the window, then heals *)
  | Join of { node : int; at : float }
      (** [node] is {e outside the group from time 0} (a late joiner:
          it neither receives casts nor runs timers) and joins at
          [at] with empty soft state — it is never charged for packets
          sent before it joined *)
  | Leave of { node : int; at : float }
      (** [node] departs the group at [at]: all its soft state is
          dropped (not suspended, unlike a crash), its pending losses
          are forgiven, and peers invalidate cached state naming it *)
  | Rejoin of { node : int; at : float }
      (** [node] — departed by an earlier [Leave] — comes back at [at]
          with empty soft state, exactly like a late joiner *)

type t = { name : string; events : event list }

val make : ?name:string -> event list -> t
(** Default name ["anonymous"]. *)

val n_events : t -> int

val has_churn : t -> bool
(** Whether the plan contains any membership (join/leave/rejoin)
    events. *)

val initial_absentees : t -> int list
(** The nodes [Join] events hold out of the group at time 0 (sorted,
    deduplicated) — the runner seeds oracle membership timelines with
    them. *)

val validate : tree:Net.Tree.t -> t -> (t, string) result
(** Well-formedness against a topology: link ids name tree links,
    crashed/churned nodes are receivers (routers cannot crash or
    churn), windows are ordered with non-negative start, jitter
    positive, restarts after crashes, and every [Rejoin] is preceded
    (in time) by a [Leave] of the same node. *)

val compile :
  network:Net.Network.t ->
  ?on_crash:(node:int -> unit) ->
  ?on_restart:(node:int -> unit) ->
  ?on_join:(node:int -> unit) ->
  ?on_leave:(node:int -> unit) ->
  t ->
  unit
(** Install the plan onto a network and its engine. Call before
    [Sim.Engine.run]; events are compiled in list order (determinism).
    [on_crash]/[on_restart] fire from the crash timers {e after} the
    node's enabled flag is flipped — the runner uses them to drop the
    member's soft protocol state. Membership events lower onto
    {!Net.Network.set_member}: [Join] nodes are excluded from the
    group at compile time (uncounted — a starting condition) and
    restored by a timer at their join time; [on_join]/[on_leave] fire
    {e after} the membership flip, and the runner uses them to
    baseline a joiner's detection window and to drop / invalidate a
    departed member's state group-wide.
    @raise Invalid_argument if the plan does not validate against the
    network's tree. *)

(** {2 Serialization} *)

val to_json : t -> Obs.Json.t

val of_json : Obs.Json.t -> (t, string) result

val save : t -> file:string -> unit

val load : string -> (t, string) result
(** Parse a plan from a JSON file. *)

(** {2 Churn schedules}

    Declarative generators of membership-event lists. All three are
    pure functions of their arguments (a private LCG, never [Random]),
    so the same schedule replays identically on every shard and every
    process. *)

val late_joiners : nodes:int list -> at:float -> spread:float -> event list
(** Each node joins once, staggered evenly across [\[at, at + spread]]
    (all at [at] when there is one node or [spread] is 0). *)

val flash_crowd : nodes:int list -> at:float -> event list
(** Every node joins at exactly [at] — a burst of empty-state members
    arriving mid-stream. *)

val steady_churn :
  nodes:int list ->
  from_:float ->
  until:float ->
  rate:float ->
  half_life:float ->
  ?seed:int64 ->
  unit ->
  event list
(** Sustained leave/rejoin churn over [\[from_, until)]: departures
    arrive with exponential gaps of mean [1/rate] seconds, each picks
    a currently-present node from [nodes], and each absence lasts an
    exponential time with {e median} [half_life] before the node
    rejoins (rejoins may land past [until]).
    @raise Invalid_argument on an empty pool, a bad window, or
    non-positive [rate]/[half_life]. *)

(** {2 Canned plans}

    Deterministic plans derived from a topology and the run's data
    phase: [warmup] is when data starts flowing and [duration] how long
    it flows (so all fault windows land inside the data phase, with the
    recovery tail left clean for repair). *)

val canned_names : string list
(** ["partition-heal"; "link-flap"; "crash-replier"; "jitter-reorder";
    ["dup-burst"]] — the perturbation plans. Membership plans live in
    {!churn_names}; both resolve through {!canned}. *)

val churn_names : string list
(** ["churn-late"] (the deepest members arrive a quarter into the data
    phase), ["churn-flash"] (a batch joins at one instant mid-stream),
    ["churn-steady"] (sustained leave/rejoin churn across the middle
    of the phase, including the natural repliers). *)

val canned : tree:Net.Tree.t -> warmup:float -> duration:float -> string -> t option
(** Resolve a {!canned_names} or {!churn_names} plan against a
    topology and data phase; [None] for an unknown name. *)
