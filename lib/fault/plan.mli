(** Declarative, deterministic fault plans.

    A plan is a named list of timed fault events against a run's
    topology: link outages, per-link delay jitter (which reorders) and
    duplication windows, host crash/restart with soft-state loss, and
    partition/heal of whole subtrees. Times are absolute sim seconds —
    the same plan on the same seed replays identically, so faulted runs
    stay pure functions of (trace, seed, plan).

    {!compile} lowers a plan onto a concrete run: window events install
    {!Net.Network} perturbation windows (checked against link {e
    crossing} times, so packets already in flight when an outage opens
    are swallowed by it), and crash/restart events become
    {!Sim.Engine} timers that toggle {!Net.Network.set_enabled} and
    invoke the caller's soft-state-loss callbacks. *)

type event =
  | Link_down of { link : int; from_ : float; until : float }
      (** every crossing of [link] (either direction) inside
          [\[from_, until)] is dropped *)
  | Link_jitter of { link : int; from_ : float; until : float; max_jitter : float }
      (** crossings arrive up to [max_jitter] seconds late (uniform);
          enough jitter reorders packets on the link *)
  | Link_dup of { link : int; from_ : float; until : float }
      (** crossings deliver a duplicate copy one extra propagation
          delay later *)
  | Crash of { node : int; at : float; restart_at : float option }
      (** the member on [node] crashes at [at] — receives nothing,
          transmits nothing, and loses all soft state (caches, session
          estimates, scheduled timers) — and, when [restart_at] is
          given, comes back up then *)
  | Partition of { root : int; from_ : float; until : float }
      (** the whole subtree under (and including) [root] is cut off
          from the rest of the tree for the window, then heals *)

type t = { name : string; events : event list }

val make : ?name:string -> event list -> t
(** Default name ["anonymous"]. *)

val n_events : t -> int

val validate : tree:Net.Tree.t -> t -> (t, string) result
(** Well-formedness against a topology: link ids name tree links,
    crashed nodes are receivers (routers cannot crash), windows are
    ordered with non-negative start, jitter positive, restarts after
    crashes. *)

val compile :
  network:Net.Network.t ->
  ?on_crash:(node:int -> unit) ->
  ?on_restart:(node:int -> unit) ->
  t ->
  unit
(** Install the plan onto a network and its engine. Call before
    [Sim.Engine.run]; events are compiled in list order (determinism).
    [on_crash]/[on_restart] fire from the crash timers {e after} the
    node's enabled flag is flipped — the runner uses them to drop the
    member's soft protocol state.
    @raise Invalid_argument if the plan does not validate against the
    network's tree. *)

(** {2 Serialization} *)

val to_json : t -> Obs.Json.t

val of_json : Obs.Json.t -> (t, string) result

val save : t -> file:string -> unit

val load : string -> (t, string) result
(** Parse a plan from a JSON file. *)

(** {2 Canned plans}

    Deterministic plans derived from a topology and the run's data
    phase: [warmup] is when data starts flowing and [duration] how long
    it flows (so all fault windows land inside the data phase, with the
    recovery tail left clean for repair). *)

val canned_names : string list
(** ["partition-heal"; "link-flap"; "crash-replier"; "jitter-reorder";
    ["dup-burst"]]. *)

val canned : tree:Net.Tree.t -> warmup:float -> duration:float -> string -> t option
(** [None] for an unknown name. *)
