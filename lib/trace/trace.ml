type t = {
  name : string;
  tree : Net.Tree.t;
  period : float;
  n_packets : int;
  loss : Bitset.t array; (* empty when [streaming] *)
  streaming : bool;
  node_to_index : (int, int) Hashtbl.t;
}

let index_receivers tree =
  let node_to_index = Hashtbl.create 16 in
  Array.iteri (fun i node -> Hashtbl.replace node_to_index node i) (Net.Tree.receivers tree);
  node_to_index

let create ~name ~tree ~period ~n_packets ~loss =
  let receivers = Net.Tree.receivers tree in
  if Array.length loss <> Array.length receivers then
    invalid_arg "Trace.create: one loss bitset per receiver required";
  Array.iter
    (fun b -> if Bitset.length b <> n_packets then invalid_arg "Trace.create: bitset length")
    loss;
  if period <= 0. then invalid_arg "Trace.create: period must be positive";
  { name; tree; period; n_packets; loss; streaming = false; node_to_index = index_receivers tree }

(* A streaming trace carries the topology and schedule but no
   materialized loss matrix — per-receiver bits never exist; losses
   are produced lazily by a [Stream_loss.t] driving the network's drop
   predicate. Anything asking for materialized bits raises. *)
let create_streaming ~name ~tree ~period ~n_packets =
  if period <= 0. then invalid_arg "Trace.create_streaming: period must be positive";
  { name; tree; period; n_packets; loss = [||]; streaming = true; node_to_index = index_receivers tree }

let streaming t = t.streaming

let require_bits t fn =
  if t.streaming then invalid_arg (fn ^ ": streaming trace has no materialized loss")

let name t = t.name

let tree t = t.tree

let period t = t.period

let n_packets t = t.n_packets

let n_receivers t = Array.length (Net.Tree.receivers t.tree)

let receiver_nodes t = Net.Tree.receivers t.tree

let receiver_index t ~node =
  match Hashtbl.find_opt t.node_to_index node with
  | Some i -> i
  | None -> raise Not_found

let lost t ~rcvr ~seq =
  require_bits t "Trace.lost";
  Bitset.get t.loss.(rcvr) (seq - 1)

let lost_node t ~node ~seq = lost t ~rcvr:(receiver_index t ~node) ~seq

let loss_bits t ~rcvr =
  require_bits t "Trace.loss_bits";
  t.loss.(rcvr)

let losses_of_receiver t ~rcvr = Bitset.count t.loss.(rcvr)

let total_losses t = Array.fold_left (fun acc b -> acc + Bitset.count b) 0 t.loss

let loss_pattern t ~seq =
  let pat = ref [] in
  for r = n_receivers t - 1 downto 0 do
    if lost t ~rcvr:r ~seq then pat := r :: !pat
  done;
  !pat

let lossy_packets t =
  let acc = ref [] in
  for seq = t.n_packets downto 1 do
    let rec any r = r < n_receivers t && (lost t ~rcvr:r ~seq || any (r + 1)) in
    if any 0 then acc := seq :: !acc
  done;
  !acc

let truncate t n =
  require_bits t "Trace.truncate";
  if n >= t.n_packets then t
  else begin
    let clip b =
      let nb = Bitset.create n in
      for i = 0 to n - 1 do
        if Bitset.get b i then Bitset.set nb i
      done;
      nb
    in
    create ~name:t.name ~tree:t.tree ~period:t.period ~n_packets:n ~loss:(Array.map clip t.loss)
  end

let summary t =
  if t.streaming then
    Printf.sprintf "%s: %d receivers, depth %d, %d packets, streaming loss" t.name
      (n_receivers t) (Net.Tree.height t.tree) t.n_packets
  else
    Printf.sprintf "%s: %d receivers, depth %d, %d packets, %d losses (%.2f%%)" t.name
      (n_receivers t) (Net.Tree.height t.tree) t.n_packets (total_losses t)
      (100. *. float_of_int (total_losses t)
      /. (float_of_int t.n_packets *. float_of_int (n_receivers t)))
