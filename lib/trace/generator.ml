type result = {
  trace : Trace.t;
  link_bad : Bitset.t array;
  link_rates : float array;
  link_bursts : float array;
}

let expected_losses tree ~rates ~n_packets =
  let per_receiver node =
    let rec survive v acc =
      if v = 0 then acc else survive (Net.Tree.parent tree v) (acc *. (1. -. rates.(v)))
    in
    1. -. survive node 1.
  in
  Array.fold_left
    (fun acc node -> acc +. per_receiver node)
    0. (Net.Tree.receivers tree)
  *. float_of_int n_packets

(* O(n) variant for scale trees: survival probabilities accumulate
   top-down, each node multiplying its parent's product once, instead
   of one root walk per receiver (quadratic on deep chains, and the
   calibration bisection evaluates this ~60 times). Not a drop-in for
   [expected_losses] on the legacy rows: the per-receiver product
   multiplies the same factors in the opposite order, so the result
   can differ in ULPs — and the pinned trace goldens were minted with
   the bottom-up walk. *)
let expected_losses_topdown tree ~rates ~n_packets =
  let n = Net.Tree.n_nodes tree in
  let survive = Array.make n 1. in
  let acc = ref 0. in
  let rec visit v =
    List.iter
      (fun c ->
        survive.(c) <- survive.(v) *. (1. -. rates.(c));
        if Net.Tree.is_leaf tree c then acc := !acc +. (1. -. survive.(c)) else visit c)
      (Net.Tree.children tree v)
  in
  visit 0;
  !acc *. float_of_int n_packets

(* A crude but stable string hash to derive per-row default seeds. *)
let hash_name name =
  let h = ref 1469598103934665603L in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 1099511628211L)
    name;
  !h

let rate_cap = 0.6

(* Find the weight scale making the expected loss total hit the target.
   Expected losses are monotone increasing in the scale, so bisect. *)
let calibrate_scale ?(expect = expected_losses) tree ~weights ~n_packets ~target =
  let rates_for s = Array.map (fun w -> Float.min rate_cap (s *. w)) weights in
  let expected s = expect tree ~rates:(rates_for s) ~n_packets in
  let rec grow hi = if expected hi >= target || hi > 1e6 then hi else grow (hi *. 2.) in
  let hi = grow 1. in
  let rec bisect lo hi iters =
    if iters = 0 then (lo +. hi) /. 2.
    else begin
      let mid = (lo +. hi) /. 2. in
      if expected mid < target then bisect mid hi (iters - 1) else bisect lo mid (iters - 1)
    end
  in
  bisect 0. hi 60

let simulate_links tree ~rng ~rates ~bursts ~n_packets =
  let n = Net.Tree.n_nodes tree in
  let link_bad = Array.make n (Bitset.create 0) in
  for l = 1 to n - 1 do
    let model = Gilbert.of_marginal ~loss_rate:rates.(l) ~mean_burst:bursts.(l) in
    link_bad.(l) <- Gilbert.run model (Sim.Rng.split rng) n_packets
  done;
  link_bad

(* A packet is lost by a receiver iff any link on its path from the
   source was Bad at that step: per-receiver loss = union of link_bad
   over the path. Accumulated top-down — each node unions its own link
   into a copy of its parent's running union — so the whole matrix is
   O(n) bitset operations instead of one root walk per receiver
   (quadratic on deep trees). Unions are order-insensitive, so the
   bits are identical to the former per-receiver walk. *)
let loss_matrix tree ~link_bad ~n_packets =
  let n = Net.Tree.n_nodes tree in
  let path_bad = Array.make n (Bitset.create 0) in
  path_bad.(0) <- Bitset.create n_packets;
  let rec visit v =
    List.iter
      (fun c ->
        let bits = Bitset.copy path_bad.(v) in
        Bitset.union_into ~dst:bits link_bad.(c);
        path_bad.(c) <- bits;
        visit c)
      (Net.Tree.children tree v)
  in
  visit 0;
  Array.map (fun node -> path_bad.(node)) (Net.Tree.receivers tree)

let realized_losses loss = Array.fold_left (fun acc b -> acc + Bitset.count b) 0 loss

(* Receiver-leaf counts below every link, in one post-order pass
   (integer counts are exact, so this replaces the former per-link
   [subtree_receivers] scan — O(n^2) overall — everywhere). *)
let receivers_below_all tree =
  let n = Net.Tree.n_nodes tree in
  let counts = Array.make n 0 in
  let rec visit v =
    let own = if Net.Tree.is_leaf tree v && v <> 0 then 1 else 0 in
    counts.(v) <-
      List.fold_left (fun acc c -> acc + visit c) own (Net.Tree.children tree v);
    counts.(v)
  in
  ignore (visit 0);
  counts

(* Everything [synthesize] draws before link simulation, factored out
   so the streaming variant consumes the rng identically: same seed +
   same row ⇒ same tree, weights, bursts, and rng position. The field
   order below mirrors the draw order; do not reorder the draws. *)
type plan = {
  p_tree : Net.Tree.t;
  p_weights : float array;
  p_bursts : float array;
  p_target : float;
  p_expect : Net.Tree.t -> rates:float array -> n_packets:int -> float;
  p_rng : Sim.Rng.t; (* positioned exactly where simulate_links reads it *)
  p_n_packets : int;
  p_period : float;
}

let plan ?seed ?n_packets (row : Meta.row) =
  let seed = match seed with Some s -> s | None -> hash_name row.name in
  let rng = Sim.Rng.create seed in
  let n_packets = match n_packets with Some n -> n | None -> row.n_packets in
  let target =
    float_of_int row.n_losses *. float_of_int n_packets /. float_of_int row.n_packets
  in
  let family = Scale.family_of_name row.name in
  let tree =
    match family with
    | None -> Topology_gen.generate ~rng ~n_receivers:row.n_receivers ~depth:row.tree_depth
    | Some (Scale.Bounded_fanout { fanout }) ->
        Topology_gen.bounded_fanout ~rng ~n_receivers:row.n_receivers ~fanout
    | Some (Scale.Star_of_stars { clusters }) ->
        Topology_gen.star_of_stars ~rng ~n_receivers:row.n_receivers ~clusters
    | Some Scale.Deep_chain -> Topology_gen.deep_chain ~rng ~n_receivers:row.n_receivers
    | Some (Scale.Rotating_hot _ | Scale.Phase_shift _) ->
        (* Adversarial cache-thrash families live on bounded-fanout
           trees; their loss schedules are built by
           [synthesize_adversarial], not the weight draws below. *)
        Topology_gen.bounded_fanout ~rng ~n_receivers:row.n_receivers
          ~fanout:Scale.default_fanout
  in
  let n = Net.Tree.n_nodes tree in
  (* Relative loss weights: every link lossy a little, a few "hot"
     links lossy a lot. Yajnik et al. observe that most MBone loss
     concentrates on a small number of links; the hot/background ratio
     here makes hot links carry the bulk of the loss, which is the
     locality CESRM's cache rides on. *)
  (* Scale families shrink the background weight by three orders of
     magnitude: across 10^4 links the trace-sized background
     (0.01–0.12 per link) would swallow the whole calibrated budget,
     smearing losses thinly over every link — no locality, every loss
     a fresh singleton event. Yajnik-style concentration (and the
     locality CESRM's cache needs) requires the hot links to carry the
     bulk. *)
  let bg_lo, bg_hi = match family with None -> (0.01, 0.12) | Some _ -> (1e-5, 1e-4) in
  let weights = Array.init n (fun l -> if l = 0 then 0. else Sim.Rng.log_uniform rng bg_lo bg_hi) in
  (* Yajnik et al. find most MBone losses are seen by one or a few
     receivers, with occasional backbone events seen by many. Hot links
     are therefore drawn mostly from the edge (small receiver
     subtrees), plus one or two interior links for the shared events. *)
  let below = receivers_below_all tree in
  let links_with pred =
    Array.of_list (List.filter pred (Array.to_list (Net.Tree.links tree)))
  in
  let edge_pool = links_with (fun l -> below.(l) <= 2) in
  let interior_pool = links_with (fun l -> below.(l) >= 3) in
  let heat l = weights.(l) <- weights.(l) +. Sim.Rng.log_uniform rng 0.8 2.5 in
  (* Trace-sized rows grow the hot-link count with the group; scale
     rows pin it to a handful so the (capped) loss budget concentrates
     into repeated events on the same links — the locality that makes
     CESRM's expedited path matter and keeps each recovery exchange
     from being a one-off global flood. *)
  let n_edge_hot =
    match family with None -> max 2 (row.n_receivers / 2) | Some _ -> 6
  in
  for _ = 1 to n_edge_hot do
    if Array.length edge_pool > 0 then heat (Sim.Rng.pick rng edge_pool)
  done;
  (* At scale an interior hot link means a loss event shared by
     thousands of receivers — an O(n) recovery exchange each time — so
     scale scenarios keep only a couple (the shared events CESRM's
     cache rides on) where the trace-sized rows grow with the group. *)
  let n_interior_hot =
    match family with None -> 1 + (row.n_receivers / 10) | Some _ -> 2
  in
  for _ = 1 to n_interior_hot do
    if Array.length interior_pool > 0 then begin
      let l = Sim.Rng.pick rng interior_pool in
      weights.(l) <- weights.(l) +. Sim.Rng.log_uniform rng 0.3 1.0
    end
  done;
  let bursts = Array.init n (fun l -> if l = 0 then 1. else Sim.Rng.uniform rng 1.2 4.0) in
  let expect = match family with None -> expected_losses | Some _ -> expected_losses_topdown in
  {
    p_tree = tree;
    p_weights = weights;
    p_bursts = bursts;
    p_target = target;
    p_expect = expect;
    p_rng = rng;
    p_n_packets = n_packets;
    p_period = float_of_int row.period_ms /. 1000.;
  }

(* -- adversarial cache-thrash families --------------------------------

   [rh] and [ps] do not draw Yajnik-style weights or Gilbert chains:
   their point is a loss locality that MOVES, so the schedule is built
   directly — windowed Bernoulli loss on explicitly chosen links — and
   only the per-link drop rates are calibrated against the row's loss
   budget (analytically, then corrected against the realized count
   like the eager Gilbert path). *)

(* Deepest-first ancestor test: does [link]'s path to the root pass
   through [anc]? Links are named by their child node. *)
let link_under tree ~anc link =
  let rec up v = v = anc || (v <> 0 && up (Net.Tree.parent tree v)) in
  up link

(* The per-packet schedule of an adversarial family: which links are
   active for packet [seq] (1-based) and at what relative weight. *)
type adversarial_schedule = {
  sched_links : int list; (* every link that is ever active, ascending *)
  sched_active : seq:int -> (int * float) list; (* (link, weight) *)
  sched_weight_packets : float; (* sum over packets of active weights x receivers below *)
}

let adversarial_schedule family tree ~n_packets =
  let below = receivers_below_all tree in
  let links = Array.to_list (Net.Tree.links tree) in
  let interior =
    List.sort
      (fun a b -> compare (below.(b), a) (below.(a), b))
      (List.filter (fun l -> below.(l) >= 3) links)
  in
  match family with
  | Scale.Rotating_hot { window; pool } ->
      (* The hot link migrates round-robin through the [pool] largest
         interior subtrees every [window] packets. *)
      let pool_links =
        List.filteri (fun i _ -> i < pool) interior |> List.sort compare |> Array.of_list
      in
      let k = Array.length pool_links in
      if k = 0 then invalid_arg "Generator: rotating-hot needs an interior link";
      let active ~seq = [ (pool_links.((seq - 1) / window mod k), 1.) ] in
      let wp = ref 0. in
      for seq = 1 to n_packets do
        List.iter (fun (l, w) -> wp := !wp +. (w *. float_of_int below.(l))) (active ~seq)
      done;
      {
        sched_links = Array.to_list pool_links;
        sched_active = active;
        sched_weight_packets = !wp;
      }
  | Scale.Phase_shift { window } ->
      (* U: the interior link whose receiver count is closest to 32 —
         big enough that a U loss is a shared event mass-failing the
         edge-phase pairs below it, small enough that the loss budget
         buys several U events per run. Edge phases activate every
         receiver edge under U. *)
      let u =
        match
          List.sort
            (fun a b -> compare (abs (below.(a) - 32), a) (abs (below.(b) - 32), b))
            interior
        with
        | u :: _ -> u
        | [] -> invalid_arg "Generator: phase-shift needs an interior link"
      in
      let edges =
        List.filter (fun l -> below.(l) = 1 && l <> u && link_under tree ~anc:u l) links
      in
      let n_edges = max 1 (List.length edges) in
      (* Weights split the loss budget evenly between the two phase
         kinds: each U-phase packet carries weight 1 on U, each
         edge-phase packet spreads the same aggregate weight over the
         edges (each edge has one receiver below, U has [below u]). *)
      let u_w = 1. /. float_of_int below.(u) in
      let e_w = 1. /. float_of_int n_edges in
      let active ~seq =
        if (seq - 1) / window mod 2 = 0 then [ (u, u_w) ]
        else List.map (fun e -> (e, e_w)) edges
      in
      let wp = ref 0. in
      for seq = 1 to n_packets do
        List.iter (fun (l, w) -> wp := !wp +. (w *. float_of_int below.(l))) (active ~seq)
      done;
      {
        sched_links = List.sort compare (u :: edges);
        sched_active = active;
        sched_weight_packets = !wp;
      }
  | _ -> invalid_arg "Generator.adversarial_schedule: not an adversarial family"

(* Simulate one attempt of the windowed Bernoulli schedule: per active
   link (ascending, one rng split each — the deterministic order the
   correction loop replays), an independent draw for every packet in
   the link's active windows. [rate_of w] maps a schedule weight to a
   drop probability. *)
let simulate_adversarial tree ~sched ~rng ~rate_of ~n_packets =
  let n = Net.Tree.n_nodes tree in
  let link_bad = Array.init n (fun _ -> Bitset.create n_packets) in
  let active_rate = Array.make n 0. in
  List.iter
    (fun l ->
      let link_rng = Sim.Rng.split rng in
      for seq = 1 to n_packets do
        List.iter (fun (al, w) -> if al = l then active_rate.(l) <- rate_of w) (sched.sched_active ~seq);
        let r = if List.mem_assoc l (sched.sched_active ~seq) then active_rate.(l) else 0. in
        if r > 0. && Sim.Rng.bernoulli link_rng r then Bitset.set link_bad.(l) (seq - 1)
      done)
    sched.sched_links;
  link_bad

let synthesize_adversarial ?seed ?n_packets family (row : Meta.row) =
  let seed = match seed with Some s -> s | None -> hash_name row.name in
  let rng = Sim.Rng.create seed in
  let n_packets = match n_packets with Some n -> n | None -> row.n_packets in
  let target =
    float_of_int row.n_losses *. float_of_int n_packets /. float_of_int row.n_packets
  in
  let tree =
    Topology_gen.bounded_fanout ~rng ~n_receivers:row.n_receivers ~fanout:Scale.default_fanout
  in
  let sched = adversarial_schedule family tree ~n_packets in
  (* Analytic base rate: expected losses = base x sched_weight_packets;
     then correct against the realized count, like the Gilbert path. *)
  let base = target /. Float.max 1e-9 sched.sched_weight_packets in
  (* Correct the analytic base rate against the realized count. Every
     probe replays a COPY of the rng (the per-link splits are the
     deterministic thing being replayed), so realized(c) is a fixed
     monotone step function of the global factor and a bisection
     converges — simulating on the advancing rng would draw a fresh
     sample each attempt and oscillate on these clumpy schedules. The
     steps can still be coarse (a bad packet on a hot interior link is
     a whole-subtree clump), so the bisection keeps the step nearest
     the target rather than demanding tolerance. *)
  let rate_for c w = Float.min rate_cap (base *. c *. w) in
  let attempt c =
    let probe = Sim.Rng.copy rng in
    let link_bad = simulate_adversarial tree ~sched ~rng:probe ~rate_of:(rate_for c) ~n_packets in
    let loss = loss_matrix tree ~link_bad ~n_packets in
    (link_bad, loss, float_of_int (realized_losses loss))
  in
  let best = ref (1., Float.infinity) in
  let note c r =
    let d = Float.abs (r -. target) in
    if d < snd !best then best := (c, d)
  in
  let _, _, r1 = attempt 1. in
  note 1. r1;
  if Float.abs (r1 -. target) /. Float.max 1. target > 0.03 then begin
    let rec bracket hi iters =
      let _, _, r = attempt hi in
      note hi r;
      if r >= target || iters = 0 then hi else bracket (hi *. 4.) (iters - 1)
    in
    let lo, hi = if r1 < target then (1., bracket 4. 8) else (0., 1.) in
    let rec bisect lo hi iters =
      if iters > 0 then begin
        let mid = (lo +. hi) /. 2. in
        let _, _, r = attempt mid in
        note mid r;
        if r < target then bisect mid hi (iters - 1) else bisect lo mid (iters - 1)
      end
    in
    bisect lo hi 16
  end;
  let c = fst !best in
  let rate_of = rate_for c in
  let link_bad, loss, _ = attempt c in
  let period = float_of_int row.period_ms /. 1000. in
  let trace = Trace.create ~name:row.name ~tree ~period ~n_packets ~loss in
  let n = Net.Tree.n_nodes tree in
  (* Reported per-link rate: the link's peak active drop probability
     (0 for links the schedule never touches); burstiness is 1 — the
     draws are independent Bernoulli. *)
  let link_rates =
    Array.init n (fun l ->
        if List.mem l sched.sched_links then rate_of 1. else 0.)
  in
  { trace; link_bad; link_rates; link_bursts = Array.make n 1. }

let synthesize ?seed ?n_packets (row : Meta.row) =
  match Scale.family_of_name row.name with
  | Some ((Scale.Rotating_hot _ | Scale.Phase_shift _) as family) ->
      synthesize_adversarial ?seed ?n_packets family row
  | _ ->
  let { p_tree = tree; p_weights = weights; p_bursts = bursts; p_target = target;
        p_expect = expect; p_rng = rng; p_n_packets = n_packets; p_period = period } =
    plan ?seed ?n_packets row
  in
  (* Calibrate, simulate, then correct the scale against the realized
     count (burstiness adds variance) and resimulate, a few times. *)
  let rec attempt iter scale_correction =
    let scale = calibrate_scale ~expect tree ~weights ~n_packets ~target *. scale_correction in
    let rates = Array.map (fun w -> Float.min rate_cap (scale *. w)) weights in
    let link_bad = simulate_links tree ~rng ~rates ~bursts ~n_packets in
    let loss = loss_matrix tree ~link_bad ~n_packets in
    let realized = realized_losses loss in
    let err = (float_of_int realized -. target) /. Float.max 1. target in
    if Float.abs err <= 0.03 || iter >= 4 then (rates, link_bad, loss)
    else attempt (iter + 1) (scale_correction *. (target /. Float.max 1. (float_of_int realized)))
  in
  let rates, link_bad, loss = attempt 1 1.0 in
  let trace = Trace.create ~name:row.name ~tree ~period ~n_packets ~loss in
  { trace; link_bad; link_rates = rates; link_bursts = bursts }

type streaming = {
  s_trace : Trace.t;
  s_loss : Stream_loss.t;
  s_rates : float array;
  s_bursts : float array;
}

(* How many prefix packets the streaming calibration's sampled
   correction pass simulates. Bounded so a million-packet leg still
   starts in effectively O(links); big enough that the prefix's
   binomial noise (~1/sqrt(prefix losses)) sits inside the 3%
   correction tolerance for the standard scale rows. *)
let streaming_correction_prefix = 2000

(* The streaming variant shares the plan draws verbatim, then
   calibrates analytically and corrects the scale against a sampled
   prefix: each correction attempt simulates the first
   [streaming_correction_prefix] packets on a COPY of the rng — the
   copy replays exactly the per-link splits [Stream_loss.create] will
   later consume, so the prefix bits are the stream's own first bits
   under the attempted rates. The rng itself is consumed by nothing
   but the final [Stream_loss.create], keeping the run a pure function
   of (row, seed). When the analytic calibration is already within the
   3% tolerance (the bounded-fanout and star rows) the first attempt
   accepts and the rates — hence the stream's bits — are identical to
   the uncorrected path; deep chains, whose top-down expectation
   systematically undershoots the realized count (every loss high in
   the chain shadows the draws below it), get the same realized-count
   correction the eager path has always had. *)
let synthesize_streaming ?seed ?n_packets ?lookback (row : Meta.row) =
  (match Scale.family_of_name row.name with
  | Some f when not (Scale.supports_streaming f) ->
      invalid_arg
        (Printf.sprintf
           "Generator.synthesize_streaming: %s is an adversarial cache-thrash family \
            (eager-only)"
           row.Meta.name)
  | _ -> ());
  let { p_tree = tree; p_weights = weights; p_bursts = bursts; p_target = target;
        p_expect = expect; p_rng = rng; p_n_packets = n_packets; p_period = period } =
    plan ?seed ?n_packets row
  in
  let scale0 = calibrate_scale ~expect tree ~weights ~n_packets ~target in
  let n_sim = min n_packets streaming_correction_prefix in
  let prefix_target = target *. float_of_int n_sim /. float_of_int n_packets in
  let below = receivers_below_all tree in
  let rates_for ?(edge = 1.) c =
    Array.mapi
      (fun l w ->
        let m = if below.(l) <= 2 then edge else 1. in
        Float.min rate_cap (scale0 *. c *. m *. w))
      weights
  in
  (* Every probe replays a COPY of the rng, so realized(·) is a fixed,
     monotone step function of the knobs — which is what lets a
     bisection converge where a multiplicative correction against
     fresh draws would chase its own variance. Two stages, because the
     steps come in very different sizes: a global factor first (its
     steps can be huge — on a deep chain one Bad run high in the chain
     is a whole-subtree clump of losses, so the tolerance window can
     fall between two steps), then a top-up factor on the receiver
     edges only (below ≤ 2), whose Bad runs are 1–4 losses each — fine
     enough to land within tolerance. *)
  let realized_for ?edge c =
    let probe = Sim.Rng.copy rng in
    let link_bad =
      simulate_links tree ~rng:probe ~rates:(rates_for ?edge c) ~bursts ~n_packets:n_sim
    in
    float_of_int (realized_losses (loss_matrix tree ~link_bad ~n_packets:n_sim))
  in
  let within r = Float.abs (r -. prefix_target) /. Float.max 1. prefix_target <= 0.03 in
  let rates =
    if prefix_target < 1. then rates_for 1.
    else begin
      let r1 = realized_for 1. in
      if within r1 then rates_for 1. (* bits identical to the uncorrected path *)
      else begin
        (* Stage 1: the largest global factor whose realization does
           not overshoot (the under side — stage 2 can only add). *)
        let lo = ref (if r1 <= prefix_target then 1. else 0.) in
        let note c r = if r <= prefix_target && c > !lo then lo := c in
        note 1. r1;
        let rec bracket hi iters =
          let r = realized_for hi in
          note hi r;
          if r >= prefix_target || iters = 0 then hi else bracket (hi *. 4.) (iters - 1)
        in
        let hi = if r1 < prefix_target then bracket 4. 8 else 1. in
        let rec bisect lo_c hi_c iters =
          if iters = 0 then ()
          else begin
            let mid = (lo_c +. hi_c) /. 2. in
            let r = realized_for mid in
            note mid r;
            if r < prefix_target then bisect mid hi_c (iters - 1)
            else bisect lo_c mid (iters - 1)
          end
        in
        bisect !lo hi 16;
        let c = !lo in
        let r_lo = realized_for c in
        if within r_lo then rates_for c
        else begin
          (* Stage 2: close the remaining deficit on the edges. *)
          let rec e_bracket hi iters =
            if realized_for ~edge:hi c >= prefix_target || iters = 0 then hi
            else e_bracket (hi *. 4.) (iters - 1)
          in
          let e_hi = e_bracket 4. 8 in
          let best = ref (1., Float.abs (r_lo -. prefix_target)) in
          let e_note m r =
            let d = Float.abs (r -. prefix_target) in
            if d < snd !best then best := (m, d)
          in
          e_note e_hi (realized_for ~edge:e_hi c);
          let rec e_bisect lo_m hi_m iters =
            if iters = 0 then ()
            else begin
              let mid = (lo_m +. hi_m) /. 2. in
              let r = realized_for ~edge:mid c in
              e_note mid r;
              if within r then ()
              else if r < prefix_target then e_bisect mid hi_m (iters - 1)
              else e_bisect lo_m mid (iters - 1)
            end
          in
          e_bisect 1. e_hi 20;
          rates_for ~edge:(fst !best) c
        end
      end
    end
  in
  let s_loss = Stream_loss.create ?lookback ~tree ~rates ~bursts ~rng ~n_packets () in
  let s_trace = Trace.create_streaming ~name:row.name ~tree ~period ~n_packets in
  { s_trace; s_loss; s_rates = rates; s_bursts = bursts }
