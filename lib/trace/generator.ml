type result = {
  trace : Trace.t;
  link_bad : Bitset.t array;
  link_rates : float array;
  link_bursts : float array;
}

let expected_losses tree ~rates ~n_packets =
  let per_receiver node =
    let rec survive v acc =
      if v = 0 then acc else survive (Net.Tree.parent tree v) (acc *. (1. -. rates.(v)))
    in
    1. -. survive node 1.
  in
  Array.fold_left
    (fun acc node -> acc +. per_receiver node)
    0. (Net.Tree.receivers tree)
  *. float_of_int n_packets

(* O(n) variant for scale trees: survival probabilities accumulate
   top-down, each node multiplying its parent's product once, instead
   of one root walk per receiver (quadratic on deep chains, and the
   calibration bisection evaluates this ~60 times). Not a drop-in for
   [expected_losses] on the legacy rows: the per-receiver product
   multiplies the same factors in the opposite order, so the result
   can differ in ULPs — and the pinned trace goldens were minted with
   the bottom-up walk. *)
let expected_losses_topdown tree ~rates ~n_packets =
  let n = Net.Tree.n_nodes tree in
  let survive = Array.make n 1. in
  let acc = ref 0. in
  let rec visit v =
    List.iter
      (fun c ->
        survive.(c) <- survive.(v) *. (1. -. rates.(c));
        if Net.Tree.is_leaf tree c then acc := !acc +. (1. -. survive.(c)) else visit c)
      (Net.Tree.children tree v)
  in
  visit 0;
  !acc *. float_of_int n_packets

(* A crude but stable string hash to derive per-row default seeds. *)
let hash_name name =
  let h = ref 1469598103934665603L in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 1099511628211L)
    name;
  !h

let rate_cap = 0.6

(* Find the weight scale making the expected loss total hit the target.
   Expected losses are monotone increasing in the scale, so bisect. *)
let calibrate_scale ?(expect = expected_losses) tree ~weights ~n_packets ~target =
  let rates_for s = Array.map (fun w -> Float.min rate_cap (s *. w)) weights in
  let expected s = expect tree ~rates:(rates_for s) ~n_packets in
  let rec grow hi = if expected hi >= target || hi > 1e6 then hi else grow (hi *. 2.) in
  let hi = grow 1. in
  let rec bisect lo hi iters =
    if iters = 0 then (lo +. hi) /. 2.
    else begin
      let mid = (lo +. hi) /. 2. in
      if expected mid < target then bisect mid hi (iters - 1) else bisect lo mid (iters - 1)
    end
  in
  bisect 0. hi 60

let simulate_links tree ~rng ~rates ~bursts ~n_packets =
  let n = Net.Tree.n_nodes tree in
  let link_bad = Array.make n (Bitset.create 0) in
  for l = 1 to n - 1 do
    let model = Gilbert.of_marginal ~loss_rate:rates.(l) ~mean_burst:bursts.(l) in
    link_bad.(l) <- Gilbert.run model (Sim.Rng.split rng) n_packets
  done;
  link_bad

(* A packet is lost by a receiver iff any link on its path from the
   source was Bad at that step: per-receiver loss = union of link_bad
   over the path. Accumulated top-down — each node unions its own link
   into a copy of its parent's running union — so the whole matrix is
   O(n) bitset operations instead of one root walk per receiver
   (quadratic on deep trees). Unions are order-insensitive, so the
   bits are identical to the former per-receiver walk. *)
let loss_matrix tree ~link_bad ~n_packets =
  let n = Net.Tree.n_nodes tree in
  let path_bad = Array.make n (Bitset.create 0) in
  path_bad.(0) <- Bitset.create n_packets;
  let rec visit v =
    List.iter
      (fun c ->
        let bits = Bitset.copy path_bad.(v) in
        Bitset.union_into ~dst:bits link_bad.(c);
        path_bad.(c) <- bits;
        visit c)
      (Net.Tree.children tree v)
  in
  visit 0;
  Array.map (fun node -> path_bad.(node)) (Net.Tree.receivers tree)

let realized_losses loss = Array.fold_left (fun acc b -> acc + Bitset.count b) 0 loss

(* Receiver-leaf counts below every link, in one post-order pass
   (integer counts are exact, so this replaces the former per-link
   [subtree_receivers] scan — O(n^2) overall — everywhere). *)
let receivers_below_all tree =
  let n = Net.Tree.n_nodes tree in
  let counts = Array.make n 0 in
  let rec visit v =
    let own = if Net.Tree.is_leaf tree v && v <> 0 then 1 else 0 in
    counts.(v) <-
      List.fold_left (fun acc c -> acc + visit c) own (Net.Tree.children tree v);
    counts.(v)
  in
  ignore (visit 0);
  counts

(* Everything [synthesize] draws before link simulation, factored out
   so the streaming variant consumes the rng identically: same seed +
   same row ⇒ same tree, weights, bursts, and rng position. The field
   order below mirrors the draw order; do not reorder the draws. *)
type plan = {
  p_tree : Net.Tree.t;
  p_weights : float array;
  p_bursts : float array;
  p_target : float;
  p_expect : Net.Tree.t -> rates:float array -> n_packets:int -> float;
  p_rng : Sim.Rng.t; (* positioned exactly where simulate_links reads it *)
  p_n_packets : int;
  p_period : float;
}

let plan ?seed ?n_packets (row : Meta.row) =
  let seed = match seed with Some s -> s | None -> hash_name row.name in
  let rng = Sim.Rng.create seed in
  let n_packets = match n_packets with Some n -> n | None -> row.n_packets in
  let target =
    float_of_int row.n_losses *. float_of_int n_packets /. float_of_int row.n_packets
  in
  let family = Scale.family_of_name row.name in
  let tree =
    match family with
    | None -> Topology_gen.generate ~rng ~n_receivers:row.n_receivers ~depth:row.tree_depth
    | Some (Scale.Bounded_fanout { fanout }) ->
        Topology_gen.bounded_fanout ~rng ~n_receivers:row.n_receivers ~fanout
    | Some (Scale.Star_of_stars { clusters }) ->
        Topology_gen.star_of_stars ~rng ~n_receivers:row.n_receivers ~clusters
    | Some Scale.Deep_chain -> Topology_gen.deep_chain ~rng ~n_receivers:row.n_receivers
  in
  let n = Net.Tree.n_nodes tree in
  (* Relative loss weights: every link lossy a little, a few "hot"
     links lossy a lot. Yajnik et al. observe that most MBone loss
     concentrates on a small number of links; the hot/background ratio
     here makes hot links carry the bulk of the loss, which is the
     locality CESRM's cache rides on. *)
  (* Scale families shrink the background weight by three orders of
     magnitude: across 10^4 links the trace-sized background
     (0.01–0.12 per link) would swallow the whole calibrated budget,
     smearing losses thinly over every link — no locality, every loss
     a fresh singleton event. Yajnik-style concentration (and the
     locality CESRM's cache needs) requires the hot links to carry the
     bulk. *)
  let bg_lo, bg_hi = match family with None -> (0.01, 0.12) | Some _ -> (1e-5, 1e-4) in
  let weights = Array.init n (fun l -> if l = 0 then 0. else Sim.Rng.log_uniform rng bg_lo bg_hi) in
  (* Yajnik et al. find most MBone losses are seen by one or a few
     receivers, with occasional backbone events seen by many. Hot links
     are therefore drawn mostly from the edge (small receiver
     subtrees), plus one or two interior links for the shared events. *)
  let below = receivers_below_all tree in
  let links_with pred =
    Array.of_list (List.filter pred (Array.to_list (Net.Tree.links tree)))
  in
  let edge_pool = links_with (fun l -> below.(l) <= 2) in
  let interior_pool = links_with (fun l -> below.(l) >= 3) in
  let heat l = weights.(l) <- weights.(l) +. Sim.Rng.log_uniform rng 0.8 2.5 in
  (* Trace-sized rows grow the hot-link count with the group; scale
     rows pin it to a handful so the (capped) loss budget concentrates
     into repeated events on the same links — the locality that makes
     CESRM's expedited path matter and keeps each recovery exchange
     from being a one-off global flood. *)
  let n_edge_hot =
    match family with None -> max 2 (row.n_receivers / 2) | Some _ -> 6
  in
  for _ = 1 to n_edge_hot do
    if Array.length edge_pool > 0 then heat (Sim.Rng.pick rng edge_pool)
  done;
  (* At scale an interior hot link means a loss event shared by
     thousands of receivers — an O(n) recovery exchange each time — so
     scale scenarios keep only a couple (the shared events CESRM's
     cache rides on) where the trace-sized rows grow with the group. *)
  let n_interior_hot =
    match family with None -> 1 + (row.n_receivers / 10) | Some _ -> 2
  in
  for _ = 1 to n_interior_hot do
    if Array.length interior_pool > 0 then begin
      let l = Sim.Rng.pick rng interior_pool in
      weights.(l) <- weights.(l) +. Sim.Rng.log_uniform rng 0.3 1.0
    end
  done;
  let bursts = Array.init n (fun l -> if l = 0 then 1. else Sim.Rng.uniform rng 1.2 4.0) in
  let expect = match family with None -> expected_losses | Some _ -> expected_losses_topdown in
  {
    p_tree = tree;
    p_weights = weights;
    p_bursts = bursts;
    p_target = target;
    p_expect = expect;
    p_rng = rng;
    p_n_packets = n_packets;
    p_period = float_of_int row.period_ms /. 1000.;
  }

let synthesize ?seed ?n_packets (row : Meta.row) =
  let { p_tree = tree; p_weights = weights; p_bursts = bursts; p_target = target;
        p_expect = expect; p_rng = rng; p_n_packets = n_packets; p_period = period } =
    plan ?seed ?n_packets row
  in
  (* Calibrate, simulate, then correct the scale against the realized
     count (burstiness adds variance) and resimulate, a few times. *)
  let rec attempt iter scale_correction =
    let scale = calibrate_scale ~expect tree ~weights ~n_packets ~target *. scale_correction in
    let rates = Array.map (fun w -> Float.min rate_cap (scale *. w)) weights in
    let link_bad = simulate_links tree ~rng ~rates ~bursts ~n_packets in
    let loss = loss_matrix tree ~link_bad ~n_packets in
    let realized = realized_losses loss in
    let err = (float_of_int realized -. target) /. Float.max 1. target in
    if Float.abs err <= 0.03 || iter >= 4 then (rates, link_bad, loss)
    else attempt (iter + 1) (scale_correction *. (target /. Float.max 1. (float_of_int realized)))
  in
  let rates, link_bad, loss = attempt 1 1.0 in
  let trace = Trace.create ~name:row.name ~tree ~period ~n_packets ~loss in
  { trace; link_bad; link_rates = rates; link_bursts = bursts }

type streaming = {
  s_trace : Trace.t;
  s_loss : Stream_loss.t;
  s_rates : float array;
  s_bursts : float array;
}

(* The streaming variant shares the plan draws verbatim, then does one
   analytic calibration (the bisection consumes no randomness) and
   hands the rng to [Stream_loss.create], which splits per link in the
   same order [simulate_links] would. The bits therefore equal the
   eager path's first calibration attempt; the realized-count
   correction loop is skipped because it needs the full matrix — at
   streaming scale the analytic expectation is already within the
   correction's own tolerance, and the loss process stays exactly
   Gilbert-distributed either way. *)
let synthesize_streaming ?seed ?n_packets ?lookback (row : Meta.row) =
  let { p_tree = tree; p_weights = weights; p_bursts = bursts; p_target = target;
        p_expect = expect; p_rng = rng; p_n_packets = n_packets; p_period = period } =
    plan ?seed ?n_packets row
  in
  let scale = calibrate_scale ~expect tree ~weights ~n_packets ~target in
  let rates = Array.map (fun w -> Float.min rate_cap (scale *. w)) weights in
  let s_loss = Stream_loss.create ?lookback ~tree ~rates ~bursts ~rng ~n_packets () in
  let s_trace = Trace.create_streaming ~name:row.name ~tree ~period ~n_packets in
  { s_trace; s_loss; s_rates = rates; s_bursts = bursts }
