(** Synthetic scale scenarios: 256–10 000-receiver topologies the
    Yajnik trace table ({!Meta}) does not reach.

    A scale scenario is named ["SCALE-<family>-<n_receivers>"], where
    [family] is one of [bf] (bounded-fanout random tree), [ss]
    (star-of-stars), [dc] (deep chain) — see {!Topology_gen} — or one
    of the adversarial cache-thrash families [rh] (rotating hot link)
    and [ps] (phase-shifting loss locality), both on bounded-fanout
    trees. Any receiver count in [8, 100 000] parses, so scenario size
    is a free parameter rather than a fixed catalog.

    A scenario resolves to a synthetic {!Meta.row} (index ≥ 100,
    disjoint from the 14 published rows) that the rest of the stack —
    {!Generator.synthesize}, [Harness.Runner.run_leg], [Exp] sweeps,
    the CLI — consumes exactly like a real trace row. Loss is
    calibrated Gilbert, like the trace rows, but at a deliberately low
    per-receiver fraction — and with the absolute budget frozen at its
    512-receiver level for larger groups: at scale every distinct
    loss event costs an O(n) recovery exchange, so a constant
    per-receiver fraction would make total recovery work quadratic in
    the group. *)

type family =
  | Bounded_fanout of { fanout : int }
  | Star_of_stars of { clusters : int }
  | Deep_chain
  | Rotating_hot of { window : int; pool : int }
      (** [rh]: one hot interior link, migrating round-robin through a
          pool of [pool] links every [window] packets — the loss
          locality a recency-ranked replier cache keeps chasing *)
  | Phase_shift of { window : int }
      (** [ps]: loss locality alternates every [window] packets between
          one shallow interior link [U] (losses shared by everyone
          below it) and the edge links under [U] (losses local to one
          receiver). Edge phases fill the caches below [U] with
          (self, sibling) pairs whose repliers share the [U] cut, so
          every [U]-phase loss mass-fails them under recency ranking —
          the scenario where score-based retention wins *)

val family_of_name : string -> family option
(** [Some family] when the name is a well-formed scale scenario name.
    [None] for anything else (including the published trace names) —
    the dispatch key {!Generator.synthesize} uses to pick the tree
    family. *)

val supports_streaming : family -> bool
(** Whether the family has a streaming loss-chain representation
    ({!Generator.synthesize_streaming}). The adversarial families
    ([rh], [ps]) build windowed Bernoulli schedules eagerly and return
    [false]; the harness keeps them on the eager generator even in
    steady mode. *)

val parse : string -> Meta.row option
(** Resolve a scale scenario name to its synthetic row. *)

val find : string -> Meta.row
(** [find name] resolves scale names via {!parse} and everything else
    via {!Meta.find} — the drop-in lookup for every site that accepts
    trace names. @raise Not_found on unknown non-scale names. *)

val catalog : Meta.row list
(** The standard scenario grid: every family at 256, 1024, 4096 and
    10 000 receivers. Informational (listings, docs); {!parse} accepts
    sizes outside this grid too. *)

val default_fanout : int
(** Fanout of the [bf] family's random trees — also the tree the
    adversarial [rh]/[ps] families are built on (4). *)

val default_adversarial_window : int
(** Migration window of the [rh]/[ps] families, packets (25). *)

val default_rotation_pool : int
(** Pool size of the [rh] rotation (4). *)

val default_n_packets : int

val loss_fraction : float
(** Target average per-receiver loss fraction of the calibration. *)
