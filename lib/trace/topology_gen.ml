(* Build a parent vector incrementally:
   1. a backbone chain of depth-1 routers guarantees reachability of
      the target height;
   2. one receiver under the deepest router pins the height exactly;
   3. every other receiver attaches under a random router, sometimes
      via a freshly created branch router, producing MBone-like trees
      where interior fanout is small and receivers sit at many
      depths. *)

let generate ~rng ~n_receivers ~depth =
  if depth < 1 then invalid_arg "Topology_gen.generate: depth >= 1 required";
  if n_receivers < 1 then invalid_arg "Topology_gen.generate: n_receivers >= 1 required";
  let parents = ref [ -1 ] (* node 0 = source, reversed order *) in
  let n_nodes = ref 1 in
  let depth_of = Hashtbl.create 32 in
  Hashtbl.replace depth_of 0 0;
  let add_node parent =
    let id = !n_nodes in
    parents := parent :: !parents;
    incr n_nodes;
    Hashtbl.replace depth_of id (1 + Hashtbl.find depth_of parent);
    id
  in
  (* Backbone routers at depths 1 .. depth-1. *)
  let backbone = Array.make depth 0 in
  for d = 1 to depth - 1 do
    backbone.(d) <- add_node backbone.(d - 1)
  done;
  let routers = ref (Array.to_list backbone) in
  (* Receivers are tracked so we can renumber leaves later; here we
     only need their parent choices. The first receiver pins height. *)
  let receiver_parents = ref [ backbone.(depth - 1) ] in
  for _ = 2 to n_receivers do
    let router_arr = Array.of_list !routers in
    (* Real MBone receivers sit at the network edge: most attach near
       the bottom of the tree, at similar depths — which is what makes
       SRM's deterministic suppression imperfect and its probabilistic
       suppression necessary. *)
    let deep = List.filter (fun r -> Hashtbl.find depth_of r >= depth - 2) !routers in
    let base =
      if deep <> [] && Sim.Rng.bernoulli rng 0.8 then Sim.Rng.pick rng (Array.of_list deep)
      else Sim.Rng.pick rng router_arr
    in
    let parent =
      (* With some probability, grow a new branch router below [base]
         (if it would not exceed depth-1), else attach directly. *)
      if Hashtbl.find depth_of base < depth - 1 && Sim.Rng.bernoulli rng 0.45 then begin
        let r = add_node base in
        routers := r :: !routers;
        r
      end
      else base
    in
    receiver_parents := parent :: !receiver_parents
  done;
  (* Receivers get the highest ids so routers keep a dense prefix; the
     id order inside each class is arbitrary. *)
  List.iter (fun parent -> ignore (add_node parent)) (List.rev !receiver_parents);
  Net.Tree.of_parents (Array.of_list (List.rev !parents))

(* --- scale families ------------------------------------------------ *)

(* The families below target 256–10 000 receivers, far beyond the
   Yajnik shapes [generate] mimics. All keep the conventions the rest
   of the stack relies on: node 0 is the source, routers occupy a
   dense id prefix, receivers get the highest ids and are exactly the
   leaves. *)

(* Router skeleton grown as a random recursive tree with a child cap,
   receivers dealt round-robin across routers. Round-robin (rather
   than random placement) guarantees every router keeps at least one
   receiver — no router is ever a leaf — and spreads receivers over
   the full range of router depths, which is the distance diversity
   SRM's deterministic suppression needs at scale. A router carries at
   most [fanout] router children plus its round-robin share of
   receivers, so node degree is bounded by about 2·[fanout]. *)
let bounded_fanout ~rng ~n_receivers ~fanout =
  if n_receivers < 1 then invalid_arg "Topology_gen.bounded_fanout: n_receivers >= 1 required";
  if fanout < 2 then invalid_arg "Topology_gen.bounded_fanout: fanout >= 2 required";
  let n_routers = max 1 ((n_receivers + fanout - 1) / fanout) in
  let parents = Array.make (1 + n_routers + n_receivers) (-1) in
  let child_count = Array.make (1 + n_routers) 0 in
  (* Routers whose router-child count is still below the cap, as a
     swap-remove stack so each attachment is O(1). *)
  let eligible = Array.make (1 + n_routers) 0 in
  let n_eligible = ref 1 in
  for r = 1 to n_routers do
    let i = Sim.Rng.int rng !n_eligible in
    let p = eligible.(i) in
    parents.(r) <- p;
    child_count.(p) <- child_count.(p) + 1;
    if child_count.(p) >= fanout then begin
      decr n_eligible;
      eligible.(i) <- eligible.(!n_eligible)
    end;
    eligible.(!n_eligible) <- r;
    incr n_eligible
  done;
  for j = 0 to n_receivers - 1 do
    parents.(1 + n_routers + j) <- 1 + (j mod n_routers)
  done;
  Net.Tree.of_parents parents

(* Two-level star: the source fans out to [clusters] hub routers, each
   hub to an equal share of receivers. Every receiver pair is
   (near-)equidistant — the worst case for SRM's deterministic
   suppression, kept as a stress shape. *)
let star_of_stars ~rng:_ ~n_receivers ~clusters =
  if n_receivers < 1 then invalid_arg "Topology_gen.star_of_stars: n_receivers >= 1 required";
  if clusters < 1 then invalid_arg "Topology_gen.star_of_stars: clusters >= 1 required";
  let clusters = min clusters n_receivers in
  let parents = Array.make (1 + clusters + n_receivers) (-1) in
  for c = 1 to clusters do
    parents.(c) <- 0
  done;
  for j = 0 to n_receivers - 1 do
    parents.(1 + clusters + j) <- 1 + (j mod clusters)
  done;
  Net.Tree.of_parents parents

(* Maximal-depth chain: router i sits at depth i, with one receiver
   hanging off each chain router. Depth grows linearly with the group,
   making per-hop costs (path walks, flood accumulation, timer
   horizons) scale worst-case. *)
let deep_chain ~rng:_ ~n_receivers =
  if n_receivers < 1 then invalid_arg "Topology_gen.deep_chain: n_receivers >= 1 required";
  let parents = Array.make (1 + (2 * n_receivers)) (-1) in
  for r = 1 to n_receivers do
    parents.(r) <- r - 1
  done;
  for j = 0 to n_receivers - 1 do
    parents.(1 + n_receivers + j) <- j + 1
  done;
  Net.Tree.of_parents parents
