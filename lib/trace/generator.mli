(** Synthetic trace generation calibrated to Table 1.

    For each published trace row we draw a random tree of the published
    receiver count and depth, attach an independent Gilbert loss
    process to every link, and calibrate the per-link marginal loss
    rates so that the expected (and, after iterative correction, the
    realized) total number of receiver-loss events matches the
    published count. A small set of "hot" interior links carries
    elevated rates, reproducing the spatial concentration of loss that
    Yajnik et al. report and that CESRM's cache exploits; the Gilbert
    burstiness reproduces the temporal locality.

    The generator returns, besides the receiver-observable trace, the
    ground-truth per-link loss trajectories — these are used only to
    validate the {!Inference} estimators, never to drive simulations
    (the paper drives NS2 from inferred links; so do we). *)

type result = {
  trace : Trace.t;
  link_bad : Bitset.t array;
      (** ground truth: [link_bad.(l)] has bit [i] set iff link [l] was
          in the Bad state for packet [i+1]; slot 0 is an empty set. *)
  link_rates : float array;  (** configured marginal loss rate per link *)
  link_bursts : float array;  (** configured mean burst length per link *)
}

val synthesize : ?seed:int64 -> ?n_packets:int -> Meta.row -> result
(** Generate a synthetic equivalent of the given Table 1 row.
    [n_packets] overrides the row's packet count (loss count target is
    scaled proportionally) — used for fast test / bench runs. *)

type streaming = {
  s_trace : Trace.t;  (** a {!Trace.create_streaming} trace: no loss matrix *)
  s_loss : Stream_loss.t;  (** lazy per-link loss chains backing the drop predicate *)
  s_rates : float array;
  s_bursts : float array;
}

val synthesize_streaming : ?seed:int64 -> ?n_packets:int -> ?lookback:int -> Meta.row -> streaming
(** Like {!synthesize} but O(links) setup and O(links · lookback)
    steady memory: same seed ⇒ same tree / weights / bursts draws,
    loss bits produced lazily. Uses the analytic calibration only (no
    realized-count correction loop — that needs the full matrix), so
    loss totals match the row target in expectation rather than within
    the eager path's 3% realized tolerance. *)

val expected_losses : Net.Tree.t -> rates:float array -> n_packets:int -> float
(** Expected total receiver-loss events if each link [l] drops
    independently with marginal [rates.(l)]. *)
