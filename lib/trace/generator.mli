(** Synthetic trace generation calibrated to Table 1.

    For each published trace row we draw a random tree of the published
    receiver count and depth, attach an independent Gilbert loss
    process to every link, and calibrate the per-link marginal loss
    rates so that the expected (and, after iterative correction, the
    realized) total number of receiver-loss events matches the
    published count. A small set of "hot" interior links carries
    elevated rates, reproducing the spatial concentration of loss that
    Yajnik et al. report and that CESRM's cache exploits; the Gilbert
    burstiness reproduces the temporal locality.

    The generator returns, besides the receiver-observable trace, the
    ground-truth per-link loss trajectories — these are used only to
    validate the {!Inference} estimators, never to drive simulations
    (the paper drives NS2 from inferred links; so do we). *)

type result = {
  trace : Trace.t;
  link_bad : Bitset.t array;
      (** ground truth: [link_bad.(l)] has bit [i] set iff link [l] was
          in the Bad state for packet [i+1]; slot 0 is an empty set. *)
  link_rates : float array;  (** configured marginal loss rate per link *)
  link_bursts : float array;  (** configured mean burst length per link *)
}

val synthesize : ?seed:int64 -> ?n_packets:int -> Meta.row -> result
(** Generate a synthetic equivalent of the given Table 1 row.
    [n_packets] overrides the row's packet count (loss count target is
    scaled proportionally) — used for fast test / bench runs.

    Rows naming an adversarial cache-thrash family
    ({!Scale.Rotating_hot}, {!Scale.Phase_shift}) take a different
    path: the loss schedule is windowed Bernoulli on explicitly chosen
    links — a hot link migrating through the [pool] largest interior
    subtrees every [window] packets ([rh]), or locality alternating
    between one shallow interior link and the receiver edges below it
    ([ps]) — with the drop rates calibrated analytically against the
    row's loss budget and then corrected against the realized count
    (3% tolerance, ≤ 4 attempts) like the Gilbert path. *)

type streaming = {
  s_trace : Trace.t;  (** a {!Trace.create_streaming} trace: no loss matrix *)
  s_loss : Stream_loss.t;  (** lazy per-link loss chains backing the drop predicate *)
  s_rates : float array;
  s_bursts : float array;
}

val synthesize_streaming : ?seed:int64 -> ?n_packets:int -> ?lookback:int -> Meta.row -> streaming
(** Like {!synthesize} but O(links) + O(prefix) setup and
    O(links · lookback) steady memory: same seed ⇒ same tree / weights
    / bursts draws, loss bits produced lazily. The analytic
    calibration is corrected against a sampled prefix: each attempt
    simulates the first [min n_packets 2000] packets on a {e copy} of
    the rng (replaying exactly the per-link splits the stream will
    consume) and rescales until the prefix's realized count is within
    3% of its share of the target (≤ 4 attempts). When the first
    attempt is already within tolerance — the [bf]/[ss] rows — the
    rates and bits are identical to the uncorrected path; deep chains,
    whose analytic expectation systematically undershoots, stream
    within the eager path's tolerance instead of ~25% under budget.
    @raise Invalid_argument for adversarial cache-thrash rows
    ([rh]/[ps] — see {!Scale.supports_streaming}): their windowed
    schedules have no streaming chain representation. *)

val expected_losses : Net.Tree.t -> rates:float array -> n_packets:int -> float
(** Expected total receiver-loss events if each link [l] drops
    independently with marginal [rates.(l)]. *)
