(** A loss trace: the receiver-observable record of one IP multicast
    transmission, in the representation of Section 4.1 of the paper.

    A trace carries the multicast tree, the constant transmission
    period, and for every receiver a binary sequence over packets
    1..k where bit i set means the receiver {e lost} packet i. *)

type t

val create :
  name:string -> tree:Net.Tree.t -> period:float -> n_packets:int -> loss:Bitset.t array -> t
(** [loss] must have one bitset of length [n_packets] per receiver, in
    the order of [Net.Tree.receivers tree].
    @raise Invalid_argument on shape mismatch. *)

val create_streaming : name:string -> tree:Net.Tree.t -> period:float -> n_packets:int -> t
(** A trace with no materialized loss matrix: topology and schedule
    only, for steady-state runs where losses are produced lazily by a
    [Stream_loss.t] driving the network's drop predicate. Accessors
    needing per-receiver bits ({!lost}, {!loss_bits}, {!truncate}, …)
    raise [Invalid_argument] on such a trace. *)

val streaming : t -> bool

val name : t -> string

val tree : t -> Net.Tree.t

val period : t -> float
(** Seconds between consecutive original packets. *)

val n_packets : t -> int

val n_receivers : t -> int

val receiver_nodes : t -> int array
(** Tree node id of each receiver index. *)

val receiver_index : t -> node:int -> int
(** Inverse of {!receiver_nodes}. @raise Not_found for non-receivers. *)

val lost : t -> rcvr:int -> seq:int -> bool
(** By receiver index; [seq] is 1-based. *)

val lost_node : t -> node:int -> seq:int -> bool

val loss_bits : t -> rcvr:int -> Bitset.t
(** The receiver's raw loss bitset (do not mutate). *)

val losses_of_receiver : t -> rcvr:int -> int

val total_losses : t -> int

val loss_pattern : t -> seq:int -> int list
(** Receiver {e indices} that lost the packet, increasing. *)

val lossy_packets : t -> int list
(** The 1-based sequence numbers lost by at least one receiver. *)

val truncate : t -> int -> t
(** Keep only the first [n] packets — used to run scaled-down
    experiments with identical loss structure. *)

val summary : t -> string
