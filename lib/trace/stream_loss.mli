(** Lazy per-link Gilbert loss chains for streaming traces.

    Replays exactly the bits [Generator.simulate_links] would
    materialize — same per-link models, same [Sim.Rng.split] order,
    same record-then-step trajectory as {!Gilbert.run} — but produces
    them on demand, keeping memory at O(links · lookback) instead of
    O(links · packets). Intended to back the drop predicate of a
    {!Trace.create_streaming} run. *)

type t

val default_lookback : int
(** 1024 — how many recent decisions each link retains. *)

val create :
  ?lookback:int ->
  tree:Net.Tree.t ->
  rates:float array ->
  bursts:float array ->
  rng:Sim.Rng.t ->
  n_packets:int ->
  unit ->
  t
(** [rates] and [bursts] are indexed by node id; link [l] is the edge
    from [l]'s parent down to [l] (node 0, the root, has no uplink).
    Chains are seeded by [Sim.Rng.split rng] in ascending link order —
    callers must hand over the rng at the same point in the draw
    sequence where [Generator.simulate_links] would consume it. *)

val n_packets : t -> int

val lost : t -> link:int -> seq:int -> bool
(** Whether the link is Bad for (1-based) data packet [seq]. Queries
    per link must stay within [lookback] of the highest seq asked so
    far; older queries raise [Invalid_argument], as do link 0 /
    out-of-range arguments. *)
