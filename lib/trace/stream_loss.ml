(* Lazily evaluated per-link Gilbert loss processes.

   [Generator.simulate_links] materializes one bitset per link — at
   10^6 packets over thousands of links that is the dominant setup
   allocation, and the per-receiver union matrix on top of it is what
   makes long runs impossible. The drop predicate, however, only ever
   asks one question per directed link traversal: "is link [l] Bad at
   data packet [seq]?" — and for a FIFO multicast tree those queries
   arrive in non-decreasing [seq] order per link (the source sends in
   seq order and every shard walks the replicated flood in time
   order). So each link keeps a running chain state plus a small ring
   of recent decisions, advanced on demand; memory is O(links ·
   lookback) regardless of stream length.

   Determinism: chains are seeded by per-link [Sim.Rng.split]s in
   ascending link order — the exact split order [simulate_links]
   uses — and each chain replays [Gilbert.run]'s step sequence
   (stationary start, record-then-step). Query order cannot perturb
   the bits: a chain consumes its own generator only, one draw per
   packet, whatever the interleaving across links. The ring absorbs
   bounded re-asks (duplicated crossings, fault-window replays); a
   query older than the ring is a bug in the caller's access pattern
   and raises rather than silently desynchronizing. *)

type chain = {
  model : Gilbert.t;
  rng : Sim.Rng.t;
  mutable state : Gilbert.state; (* state governing packet [next] *)
  mutable next : int; (* lowest seq not yet decided (1-based) *)
  ring : Bytes.t; (* decision for seq s at [s mod lookback] *)
}

type t = { chains : chain option array; lookback : int; n_packets : int }

let default_lookback = 1024

let create ?(lookback = default_lookback) ~tree ~rates ~bursts ~rng ~n_packets () =
  if lookback <= 0 then invalid_arg "Stream_loss.create: lookback must be positive";
  let n = Net.Tree.n_nodes tree in
  let chains = Array.make n None in
  (* Split in ascending link order — the exact order
     [Generator.simulate_links] consumes the same parent rng. *)
  for l = 1 to n - 1 do
    let model = Gilbert.of_marginal ~loss_rate:rates.(l) ~mean_burst:bursts.(l) in
    let rng = Sim.Rng.split rng in
    chains.(l) <-
      Some
        {
          model;
          rng;
          state = Gilbert.stationary_state model rng;
          next = 1;
          ring = Bytes.make lookback '\000';
        }
  done;
  { chains; lookback; n_packets }

let n_packets t = t.n_packets

let lost t ~link ~seq =
  if link <= 0 || link >= Array.length t.chains then
    invalid_arg "Stream_loss.lost: bad link id";
  if seq < 1 || seq > t.n_packets then invalid_arg "Stream_loss.lost: seq out of range";
  let c =
    match t.chains.(link) with
    | Some c -> c
    | None -> invalid_arg "Stream_loss.lost: bad link id"
  in
  if seq < c.next - t.lookback then
    invalid_arg "Stream_loss.lost: seq older than the lookback window";
  while c.next <= seq do
    Bytes.set c.ring (c.next mod t.lookback)
      (match c.state with Gilbert.Bad -> '\001' | Gilbert.Good -> '\000');
    c.state <- Gilbert.step c.model c.rng c.state;
    c.next <- c.next + 1
  done;
  Bytes.get c.ring (seq mod t.lookback) = '\001'
