type family =
  | Bounded_fanout of { fanout : int }
  | Star_of_stars of { clusters : int }
  | Deep_chain
  | Rotating_hot of { window : int; pool : int }
  | Phase_shift of { window : int }

let default_fanout = 4

(* Adversarial cache-thrash families: the loss locality migrates every
   [window] packets, which is what defeats a small recency-ranked
   replier cache. 25 packets ≈ 1 s of data at the default period —
   long enough for a recovery exchange to complete and repopulate the
   caches, short enough that a 200-packet row sees 8 migrations. *)
let default_adversarial_window = 25

let default_rotation_pool = 4

let default_n_packets = 200

let default_period_ms = 40

(* Average per-receiver loss fraction the calibration targets. Kept
   deliberately below the Yajnik traces' (~3–6%): every distinct loss
   event at scale triggers an O(n) recovery exchange, so the loss
   budget — not the data stream — dominates the event count. *)
let loss_fraction = 0.003

(* Beyond this group size the absolute loss budget stops growing:
   recovering one event costs O(n) deliveries, so a per-receiver
   fraction held constant in n would make total recovery work
   quadratic. Capping the budget keeps a 10^4-receiver, 200-packet
   scenario inside a desktop-seconds event count while the per-event
   dynamics (suppression spread, implosion pressure) still see the
   full group. *)
let loss_budget_receivers = 512

let parse_name name =
  match String.split_on_char '-' name with
  | [ "SCALE"; fam; n ] -> (
      match int_of_string_opt n with
      | Some n_receivers when n_receivers >= 8 && n_receivers <= 100_000 -> (
          match fam with
          | "bf" -> Some (Bounded_fanout { fanout = default_fanout }, n_receivers)
          | "ss" ->
              let clusters = max 2 (int_of_float (sqrt (float_of_int n_receivers))) in
              Some (Star_of_stars { clusters }, n_receivers)
          | "dc" -> Some (Deep_chain, n_receivers)
          | "rh" ->
              Some
                ( Rotating_hot
                    { window = default_adversarial_window; pool = default_rotation_pool },
                  n_receivers )
          | "ps" -> Some (Phase_shift { window = default_adversarial_window }, n_receivers)
          | _ -> None)
      | _ -> None)
  | _ -> None

let family_of_name name = Option.map fst (parse_name name)

let family_code = function
  | Bounded_fanout _ -> 0
  | Star_of_stars _ -> 1
  | Deep_chain -> 2
  | Rotating_hot _ -> 3
  | Phase_shift _ -> 4

(* The adversarial families build their loss schedules directly
   (windowed Bernoulli on chosen links) instead of calibrated Gilbert
   chains, so they have no streaming loss-chain representation — the
   harness keeps them on the eager generator even in steady mode. *)
let supports_streaming = function
  | Bounded_fanout _ | Star_of_stars _ | Deep_chain -> true
  | Rotating_hot _ | Phase_shift _ -> false

let row_of name family n_receivers =
  let tree_depth =
    match family with
    | Bounded_fanout { fanout } ->
        (* Advisory: routers form a random recursive tree, whose depth
           is logarithmic in expectation. *)
        2 + int_of_float (ceil (log (float_of_int n_receivers) /. log (float_of_int fanout)))
    | Star_of_stars _ -> 2
    | Deep_chain -> n_receivers + 1
    | Rotating_hot _ | Phase_shift _ ->
        (* Bounded-fanout trees at the default fanout. *)
        2
        + int_of_float
            (ceil (log (float_of_int n_receivers) /. log (float_of_int default_fanout)))
  in
  let n_losses =
    max 1
      (int_of_float
         (Float.round
            (loss_fraction *. float_of_int default_n_packets
            *. float_of_int (min n_receivers loss_budget_receivers))))
  in
  {
    Meta.index = 100 + (10 * n_receivers) + family_code family;
    name;
    n_receivers;
    tree_depth;
    period_ms = default_period_ms;
    duration_s = default_n_packets * default_period_ms / 1000;
    n_packets = default_n_packets;
    n_losses;
  }

let parse name =
  Option.map (fun (family, n_receivers) -> row_of name family n_receivers) (parse_name name)

let find name =
  match parse name with Some row -> row | None -> Meta.find name

let standard_sizes = [ 256; 1024; 4096; 10000 ]

let catalog =
  List.concat_map
    (fun n ->
      List.filter_map
        (fun fam -> parse (Printf.sprintf "SCALE-%s-%d" fam n))
        [ "bf"; "ss"; "dc"; "rh"; "ps" ])
    standard_sizes
