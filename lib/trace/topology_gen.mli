(** Random multicast-tree topologies with prescribed shape.

    Yajnik et al. publish, for each trace, the receiver count and the
    multicast tree depth but not the tree itself. This generator draws
    a random tree with exactly the requested number of receivers (all
    of them leaves) and exactly the requested height, with a mix of
    backbone routers and branching that resembles the published MBone
    topologies (fanout mostly 1–3, receivers hanging at varied
    depths). *)

val generate : rng:Sim.Rng.t -> n_receivers:int -> depth:int -> Net.Tree.t
(** @raise Invalid_argument if [depth < 1], [n_receivers < 1], or the
    shape is infeasible (a height-[d] tree needs at least one receiver
    at depth [d]). *)

(** {1 Scale families}

    Tree families for 256–10 000 receiver synthetic scenarios (see
    {!Scale}). All share the invariants of {!generate}: node 0 is the
    source, routers form a dense id prefix, receivers get the highest
    ids and are exactly the leaves. *)

val bounded_fanout : rng:Sim.Rng.t -> n_receivers:int -> fanout:int -> Net.Tree.t
(** Random recursive router tree with at most [fanout] router children
    per router (about [n_receivers / fanout] routers, depth
    logarithmic in expectation); receivers are dealt round-robin
    across routers, so total node degree is bounded by about
    2·[fanout] and receivers sit at many distinct depths.
    @raise Invalid_argument if [n_receivers < 1] or [fanout < 2]. *)

val star_of_stars : rng:Sim.Rng.t -> n_receivers:int -> clusters:int -> Net.Tree.t
(** Source → [clusters] hubs → receivers, split evenly; depth 2.
    Receivers are pairwise (near-)equidistant — the adversarial shape
    for timer-based suppression.
    @raise Invalid_argument if [n_receivers < 1] or [clusters < 1]. *)

val deep_chain : rng:Sim.Rng.t -> n_receivers:int -> Net.Tree.t
(** A chain of [n_receivers] routers with one receiver per router;
    depth [n_receivers + 1]. Exercises worst-case path lengths.
    @raise Invalid_argument if [n_receivers < 1]. *)
