(** Declarative experiment descriptions.

    A spec names the axes of a sweep — Table 1 traces × protocol
    variants × seeds — plus the shared run parameters; {!cells} expands
    the cartesian product into an ordered shard list. Every cell's
    generator/run seed is derived deterministically from the spec's
    base seed with {!Sim.Rng.substream}, keyed by (trace, seed index)
    but {e not} by protocol, so the protocol variants of one cell group
    re-enact the identical synthesized trace — the property the paper's
    SRM-vs-CESRM comparison rests on.

    Specs serialize to/from {!Obs.Json}, so a sweep is reproducible
    from its artifact alone. *)

type protocol_spec =
  | Srm
  | Cesrm of { policy : Cesrm.Policy.t; retention : Cesrm.Retention.t; router_assist : bool }
  | Lms

val protocol_name : protocol_spec -> string
(** ["srm"], ["lms"], or ["cesrm:<policy>[@retention]"] with a ["+ra"]
    suffix when router assist is on (e.g. ["cesrm:most-recent+ra"],
    ["cesrm:most-recent@lru:4"]). The retention segment is omitted when
    it is {!Cesrm.Retention.default}, so pre-retention artifact names
    are stable. *)

val protocol_of_name : string -> (protocol_spec, string) result
(** Inverse of {!protocol_name}; bare ["cesrm"] means the default
    policy, default retention, no router assist. *)

val runner_protocol : protocol_spec -> Harness.Runner.protocol

type t = {
  name : string;  (** free-form label, recorded in the artifact *)
  traces : string list;
      (** Table 1 trace names, plus [SCALE-<family>-<n>] synthetic
          scale scenarios ({!Mtrace.Scale}) *)
  protocols : protocol_spec list;
  base_seed : int64;
  n_seeds : int;  (** seeds axis: seed indices 0 .. n_seeds-1 *)
  n_packets : int option;  (** per-trace truncation; [None] = full row *)
  link_delay_ms : float;
  lossy_recovery : bool;
  faults : string list;
      (** optional faults axis: canned {!Fault.Plan} names and/or
          ["none"] for the unfaulted baseline; [[]] = no axis (the
          pre-faults enumeration, bit for bit) *)
}

val default : t
(** The featured 6 traces × (SRM, default CESRM) × 1 seed, full packet
    counts, 20 ms links, lossless recovery, base seed 42, no faults
    axis. *)

val fault_names : string list
(** The admissible faults-axis entries: ["none"] plus
    {!Fault.Plan.canned_names}. *)

val validate : t -> (t, string) result
(** Reject unknown trace names, empty axes, non-positive parameters,
    and unknown fault-plan names. *)

type cell = {
  index : int;  (** position in {!cells} — the shard id *)
  trace : string;
  protocol : protocol_spec;
  seed_index : int;
  seed : int64;  (** derived; shared by all protocols of a cell group *)
  fault : string option;
      (** the faults-axis slot ([Some "none"] = explicit baseline);
          [None] iff the spec has no faults axis *)
}

val cells : t -> cell array
(** Cartesian expansion, trace-major then seed then fault then
    protocol, so the protocol variants sharing a synthesized trace and
    fault schedule are adjacent. Seeds are keyed by (trace, seed index)
    only — every fault variant replays the identical trace, making
    cross-fault comparisons paired too. *)

val cell_label : cell -> string
(** ["<trace>/<protocol>/s<seed_index>[/<fault>]"] — unique within a
    spec, used as the ["name"] key {!Obs.Diff} aligns artifact rows
    by. *)

val to_json : t -> Obs.Json.t

val of_json : Obs.Json.t -> (t, string) result
(** Parse and {!validate}. Seeds are encoded as decimal strings (JSON
    numbers are doubles and cannot carry an int64). *)
