(** Streaming aggregation of shard results into one sweep artifact.

    Shard results are accepted in any arrival order ({!add}); the
    final merge ({!finalize}) always folds them in shard-index order,
    so the artifact is a pure function of the result set — the parallel
    pool and the serial loop produce byte-identical bytes. Histograms
    are merged through {!Obs.Hist.of_json}/{!Obs.Hist.merge} (lossless
    by construction), scalar counts are summed, and the per-cell rows —
    each carrying a ["name"] key — are concatenated, which is the form
    {!Obs.Diff} aligns across artifacts. *)

type t

val create : Spec.t -> t

val add : t -> index:int -> Obs.Json.t -> unit
(** Record shard [index]'s result. Re-adding an index overwrites it.
    @raise Invalid_argument on an out-of-range index. *)

val add_string : t -> index:int -> string -> (unit, string) result
(** {!add} after parsing the transport string. *)

val missing : t -> int list
(** Shard indices not yet added, ascending. *)

val finalize : ?meta:(string * Obs.Json.t) list -> t -> Obs.Json.t
(** The artifact: a [meta] object (schema tag, the spec, caller
    extras), the concatenated per-cell rows (transport histograms
    stripped), summed totals and the merged latency histograms.
    Callers must keep [meta] free of run-dependent values (wall time,
    job count) or forfeit serial/parallel byte-identity.
    @raise Failure if any shard is {!missing}. *)
