let hist_names =
  [ "latency_s"; "latency_rtt"; "latency_rtt_expedited"; "latency_rtt_fallback" ]

let run ?shards ?domains (spec : Spec.t) (cell : Spec.cell) =
  let open Obs.Json in
  let row = Mtrace.Scale.find cell.Spec.trace in
  let setup =
    {
      Harness.Runner.default_setup with
      link_delay = spec.Spec.link_delay_ms /. 1000.;
      lossy_recovery = spec.Spec.lossy_recovery;
    }
  in
  let registry = Obs.Registry.create () in
  let fault = match cell.Spec.fault with Some f when f <> "none" -> Some f | _ -> None in
  let res =
    Harness.Runner.run_leg ~setup ~registry ?n_packets:spec.Spec.n_packets ?fault ?shards
      ?domains ~seed:cell.Spec.seed
      (Spec.runner_protocol cell.Spec.protocol)
      row
  in
  let counters =
    Obj
      (List.map
         (fun kind ->
           (Stats.Counters.kind_name kind, int (Stats.Counters.total res.counters kind)))
         Stats.Counters.all_kinds)
  in
  let cost =
    Obj
      [
        ("retransmission", int (Net.Cost.retransmission_overhead res.cost));
        ("control_mc", int (Net.Cost.control_overhead res.cost ~multicast:true));
        ("control_uc", int (Net.Cost.control_overhead res.cost ~multicast:false));
      ]
  in
  (* The per-receiver recovery table: one row per receiver, normalized
     to that receiver's RTT to the source, as in the paper's figures. *)
  let receivers =
    Arr
      (List.map
         (fun (node, rtt) ->
           let s = Harness.Runner.normalized_recovery res ~node ~filter:(fun _ -> true) in
           let expedited =
             List.length
               (List.filter
                  (fun r -> r.Stats.Recovery.expedited)
                  (Stats.Recovery.for_node res.recoveries node))
           in
           Obj
             [
               ("node", int node);
               ("rtt_ms", Num (1000. *. rtt));
               ("recoveries", int (Stats.Summary.count s));
               ("expedited", int expedited);
               ( "mean_rtt",
                 if Stats.Summary.count s = 0 then Null else Num (Stats.Summary.mean s) );
             ])
         res.rtt_to_source)
  in
  let hists =
    Obj
      (List.map
         (fun name ->
           (name, Obs.Hist.to_json (Obs.Registry.hist registry ("recovery/" ^ name))))
         hist_names)
  in
  Obj
    [
      ("name", Str (Spec.cell_label cell));
      ("index", int cell.Spec.index);
      ("trace", Str cell.Spec.trace);
      ("protocol", Str (Spec.protocol_name cell.Spec.protocol));
      ("seed_index", int cell.Spec.seed_index);
      ("seed", Str (Int64.to_string cell.Spec.seed));
      ("fault", (match cell.Spec.fault with None -> Null | Some f -> Str f));
      ("detected", int res.detected);
      ("recovered", int (Stats.Recovery.count res.recoveries));
      ("unrecovered", int res.unrecovered);
      ("audit_violations", int res.audit_violations);
      ("oracle_violations", int res.oracle_violations);
      ( "oracle",
        match res.oracle with
        | Some o when not (Fault.Oracle.clean o) -> Fault.Oracle.to_json o
        | _ -> Null );
      ("exp_requests", int res.exp_requests);
      ("exp_replies", int res.exp_replies);
      ( "makespan",
        let mk = Stats.Recovery.makespan_summary res.recoveries in
        if Stats.Summary.count mk = 0 then Null
        else
          Obj
            [
              ("losses", int (Stats.Summary.count mk));
              ("mean", Num (Stats.Summary.mean mk));
              ("p99", Num (Stats.Summary.percentile mk 0.99));
              ("max", Num (Stats.Summary.max mk));
            ] );
      ("counters", counters);
      ("cost", cost);
      ("receivers", receivers);
      ("hists", hists);
    ]

let run_string ?shards ?domains spec cell = Obs.Json.to_string (run ?shards ?domains spec cell)
