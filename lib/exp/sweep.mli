(** One-call sweep: expand a spec, run its shards through the pool,
    aggregate.

    [run spec] is the composition the `cesrm sweep` subcommand and the
    tests share: {!Spec.cells} → {!Pool.map} over {!Shard.run_string} →
    {!Agg}. The returned artifact is byte-identical for any [jobs]
    value (including the serial fallback), because shards are pure
    functions of their index and {!Agg.finalize} merges in index
    order. *)

val run :
  ?jobs:int ->
  ?shards:int ->
  ?timeout:float ->
  ?retries:int ->
  ?on_result:(index:int -> done_:int -> total:int -> unit) ->
  ?meta:(string * Obs.Json.t) list ->
  ?domains:Rdomain.spec ->
  Spec.t ->
  Obs.Json.t
(** @raise Failure when a shard fails beyond its retry budget (see
    {!Pool.map}). [meta] extends the artifact's meta object and must
    stay run-independent to preserve byte-identity. [shards] runs each
    cell's simulation sharded over that many PDES workers
    ({!Shard.run}) — total process count is then [jobs * shards]. The
    artifact is byte-identical for any [jobs] and [shards]; the one
    exception is [jobs = 0] (auto-detect), whose resolved worker count
    is recorded under meta ["jobs"] as
    [{"requested": 0, "detected": n}] — explicit counts record nothing,
    keeping the artifact a pure function of the spec. [domains] runs
    every cell under hierarchical local recovery domains
    ({!Shard.run}); it changes the results, so only compare such
    artifacts against baselines swept with the same spec. *)
