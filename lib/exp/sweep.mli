(** One-call sweep: expand a spec, run its shards through the pool,
    aggregate.

    [run spec] is the composition the `cesrm sweep` subcommand and the
    tests share: {!Spec.cells} → {!Pool.map} over {!Shard.run_string} →
    {!Agg}. The returned artifact is byte-identical for any [jobs]
    value (including the serial fallback), because shards are pure
    functions of their index and {!Agg.finalize} merges in index
    order. *)

val run :
  ?jobs:int ->
  ?timeout:float ->
  ?retries:int ->
  ?on_result:(index:int -> done_:int -> total:int -> unit) ->
  ?meta:(string * Obs.Json.t) list ->
  Spec.t ->
  Obs.Json.t
(** @raise Failure when a shard fails beyond its retry budget (see
    {!Pool.map}). [meta] extends the artifact's meta object and must
    stay run-independent to preserve byte-identity. *)
