type protocol_spec =
  | Srm
  | Cesrm of { policy : Cesrm.Policy.t; retention : Cesrm.Retention.t; router_assist : bool }
  | Lms

let protocol_name = function
  | Srm -> "srm"
  | Lms -> "lms"
  | Cesrm { policy; retention; router_assist } ->
      (* The retention segment is omitted when default, so every
         pre-retention artifact name round-trips unchanged. *)
      Printf.sprintf "cesrm:%s%s%s" (Cesrm.Policy.name policy)
        (if Cesrm.Retention.is_default retention then ""
         else "@" ^ Cesrm.Retention.name retention)
        (if router_assist then "+ra" else "")

let protocol_of_name s =
  match s with
  | "srm" -> Ok Srm
  | "lms" -> Ok Lms
  | _ when s = "cesrm" || String.length s > 6 && String.sub s 0 6 = "cesrm:" ->
      let rest = if s = "cesrm" then "" else String.sub s 6 (String.length s - 6) in
      let rest, router_assist =
        match String.length rest with
        | n when n >= 3 && String.sub rest (n - 3) 3 = "+ra" -> (String.sub rest 0 (n - 3), true)
        | _ -> (rest, false)
      in
      let policy_part, retention_part =
        match String.index_opt rest '@' with
        | Some i ->
            (String.sub rest 0 i, Some (String.sub rest (i + 1) (String.length rest - i - 1)))
        | None -> (rest, None)
      in
      let ( let* ) = Result.bind in
      let* retention =
        match retention_part with
        | None -> Ok Cesrm.Retention.default
        | Some r -> (
            match Cesrm.Retention.of_name r with
            | Some retention -> Ok retention
            | None ->
                Error
                  (Printf.sprintf "unknown CESRM cache policy %S (expected %s)" r
                     Cesrm.Retention.names_doc))
      in
      let* policy =
        if policy_part = "" then Ok Cesrm.Host.default_config.Cesrm.Host.policy
        else begin
          match Cesrm.Policy.of_name policy_part with
          | Some policy -> Ok policy
          | None -> Error (Printf.sprintf "unknown CESRM policy %S" policy_part)
        end
      in
      Ok (Cesrm { policy; retention; router_assist })
  | _ ->
      Error
        (Printf.sprintf "unknown protocol %S (expected srm, cesrm[:policy][@retention][+ra] or lms)"
           s)

let runner_protocol = function
  | Srm -> Harness.Runner.Srm_protocol
  | Lms -> Harness.Runner.Lms_protocol
  | Cesrm { policy; retention; router_assist } ->
      Harness.Runner.Cesrm_protocol
        { Cesrm.Host.default_config with policy; retention; router_assist }

type t = {
  name : string;
  traces : string list;
  protocols : protocol_spec list;
  base_seed : int64;
  n_seeds : int;
  n_packets : int option;
  link_delay_ms : float;
  lossy_recovery : bool;
  faults : string list;
}

let default =
  {
    name = "featured";
    traces = List.map (fun r -> r.Mtrace.Meta.name) Mtrace.Meta.featured;
    protocols =
      [
        Srm;
        Cesrm
          {
            policy = Cesrm.Host.default_config.Cesrm.Host.policy;
            retention = Cesrm.Retention.default;
            router_assist = Cesrm.Host.default_config.Cesrm.Host.router_assist;
          };
      ];
    base_seed = 42L;
    n_seeds = 1;
    n_packets = None;
    link_delay_ms = 20.;
    lossy_recovery = false;
    faults = [];
  }

let fault_names = ("none" :: Fault.Plan.canned_names) @ Fault.Plan.churn_names

let validate t =
  let unknown =
    List.filter
      (fun n ->
        Mtrace.Scale.parse n = None
        && not (List.exists (fun r -> r.Mtrace.Meta.name = n) Mtrace.Meta.all))
      t.traces
  in
  if t.traces = [] then Error "spec has no traces"
  else if unknown <> [] then
    Error (Printf.sprintf "unknown trace(s): %s" (String.concat ", " unknown))
  else if t.protocols = [] then Error "spec has no protocols"
  else if t.n_seeds <= 0 then Error "n_seeds must be positive"
  else if (match t.n_packets with Some n -> n <= 0 | None -> false) then
    Error "n_packets must be positive"
  else if not (t.link_delay_ms > 0.) then Error "link_delay_ms must be positive"
  else begin
    match List.filter (fun f -> not (List.mem f fault_names)) t.faults with
    | [] -> Ok t
    | unknown ->
        Error
          (Printf.sprintf "unknown fault plan(s): %s (expected %s)"
             (String.concat ", " unknown)
             (String.concat ", " fault_names))
  end

type cell = {
  index : int;
  trace : string;
  protocol : protocol_spec;
  seed_index : int;
  seed : int64;
  fault : string option;
}

let cells t =
  let traces = Array.of_list t.traces and protocols = Array.of_list t.protocols in
  let faults = Array.of_list t.faults in
  (* The faults axis is innermost-but-one (protocols stay innermost);
     with no axis the enumeration, labels and derived seeds reduce
     exactly to the pre-faults scheme. Seeds are derived per
     (trace, seed_index) — NOT per fault — so every fault variant of a
     cell replays the identical trace and schedule, which is what makes
     cross-fault (and SRM-vs-CESRM-under-faults) comparisons paired. *)
  let n_faults = max 1 (Array.length faults) in
  let n_groups = Array.length traces * t.n_seeds * n_faults in
  Array.init (n_groups * Array.length protocols) (fun index ->
      let group = index / Array.length protocols in
      let protocol = protocols.(index mod Array.length protocols) in
      let trace_index = group / (t.n_seeds * n_faults) in
      let rem = group mod (t.n_seeds * n_faults) in
      let seed_index = rem / n_faults in
      let fault =
        if Array.length faults = 0 then None else Some faults.(rem mod n_faults)
      in
      {
        index;
        trace = traces.(trace_index);
        protocol;
        seed_index;
        seed = Sim.Rng.substream t.base_seed ((trace_index * t.n_seeds) + seed_index);
        fault;
      })

let cell_label c =
  Printf.sprintf "%s/%s/s%d%s" c.trace (protocol_name c.protocol) c.seed_index
    (match c.fault with None -> "" | Some f -> "/" ^ f)

let to_json t =
  let open Obs.Json in
  Obj
    [
      ("name", Str t.name);
      ("traces", Arr (List.map (fun n -> Str n) t.traces));
      ("protocols", Arr (List.map (fun p -> Str (protocol_name p)) t.protocols));
      ("base_seed", Str (Int64.to_string t.base_seed));
      ("n_seeds", int t.n_seeds);
      ("n_packets", (match t.n_packets with None -> Null | Some n -> int n));
      ("link_delay_ms", Num t.link_delay_ms);
      ("lossy_recovery", Bool t.lossy_recovery);
      ("faults", Arr (List.map (fun f -> Str f) t.faults));
    ]

let of_json json =
  let open Obs.Json in
  let ( let* ) = Result.bind in
  let str_list field =
    match member field json with
    | Some (Arr items) ->
        List.fold_right
          (fun item acc ->
            let* acc = acc in
            match item with
            | Str s -> Ok (s :: acc)
            | _ -> Error (Printf.sprintf "%s: expected an array of strings" field))
          items (Ok [])
    | _ -> Error (Printf.sprintf "%s: expected an array of strings" field)
  in
  let* name =
    match member "name" json with
    | Some (Str s) -> Ok s
    | None -> Ok "sweep"
    | Some _ -> Error "name: expected a string"
  in
  let* traces = str_list "traces" in
  let* protocol_names = str_list "protocols" in
  let* protocols =
    List.fold_right
      (fun n acc ->
        let* acc = acc in
        let* p = protocol_of_name n in
        Ok (p :: acc))
      protocol_names (Ok [])
  in
  let* base_seed =
    match member "base_seed" json with
    | Some (Str s) -> (
        match Int64.of_string_opt s with
        | Some v -> Ok v
        | None -> Error (Printf.sprintf "base_seed: %S is not an int64" s))
    | Some (Num x) when Float.is_integer x -> Ok (Int64.of_float x)
    | None -> Ok 42L
    | Some _ -> Error "base_seed: expected a decimal string"
  in
  let int_field field ~default =
    match member field json with
    | Some (Num x) when Float.is_integer x -> Ok (int_of_float x)
    | None -> Ok default
    | Some _ -> Error (Printf.sprintf "%s: expected an integer" field)
  in
  let* n_seeds = int_field "n_seeds" ~default:1 in
  let* n_packets =
    match member "n_packets" json with
    | Some (Num x) when Float.is_integer x -> Ok (Some (int_of_float x))
    | Some Null | None -> Ok None
    | Some _ -> Error "n_packets: expected an integer or null"
  in
  let* link_delay_ms =
    match member "link_delay_ms" json with
    | Some (Num x) -> Ok x
    | None -> Ok 20.
    | Some _ -> Error "link_delay_ms: expected a number"
  in
  let* lossy_recovery =
    match member "lossy_recovery" json with
    | Some (Bool b) -> Ok b
    | None -> Ok false
    | Some _ -> Error "lossy_recovery: expected a boolean"
  in
  let* faults = match member "faults" json with None -> Ok [] | Some _ -> str_list "faults" in
  validate
    {
      name;
      traces;
      protocols;
      base_seed;
      n_seeds;
      n_packets;
      link_delay_ms;
      lossy_recovery;
      faults;
    }
