(** Execution of one sweep shard (= one {!Spec.cell}).

    A shard synthesizes its cell's trace with the cell's derived seed,
    runs the cell's protocol on it ({!Harness.Runner.run_leg}) and
    renders the outcome as a self-describing JSON object: headline
    counts, per-kind packet counters, cost-overhead crossings, a
    per-receiver recovery table, and the four recovery-latency
    histograms in {!Obs.Hist.to_json} transport form so the aggregator
    can merge them losslessly.

    The result is a pure function of [(spec, cell)] — no wall-clock or
    pid leaks into it — which is what makes serial and parallel sweeps
    byte-identical. *)

val hist_names : string list
(** The recovery histograms a shard carries (and {!Agg} merges):
    ["latency_s"], ["latency_rtt"], ["latency_rtt_expedited"],
    ["latency_rtt_fallback"] — the {!Harness.Instrument} registry
    names without their ["recovery/"] prefix. *)

val run : ?shards:int -> ?domains:Rdomain.spec -> Spec.t -> Spec.cell -> Obs.Json.t
(** [shards] executes the cell's run sharded
    ([Harness.Runner.run_leg ?shards]); the rendered cell is
    byte-identical for any value, so it is a runtime knob, not part of
    the spec. [domains] runs every cell with hierarchical local
    recovery domains ([Harness.Runner.run_leg ?domains]); unlike
    [shards] it changes the results, so artifacts produced with it are
    only comparable to baselines swept the same way. *)

val run_string : ?shards:int -> ?domains:Rdomain.spec -> Spec.t -> Spec.cell -> string
(** [run] rendered compactly — the worker-to-parent transport form. *)
