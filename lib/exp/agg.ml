type t = { spec : Spec.t; slots : Obs.Json.t option array }

let create spec = { spec; slots = Array.make (Array.length (Spec.cells spec)) None }

let add t ~index json =
  if index < 0 || index >= Array.length t.slots then
    invalid_arg (Printf.sprintf "Agg.add: shard index %d out of range" index);
  t.slots.(index) <- Some json

let add_string t ~index s =
  match Obs.Json.parse s with
  | Ok json ->
      add t ~index json;
      Ok ()
  | Error msg -> Error msg

let missing t =
  Array.to_list t.slots
  |> List.mapi (fun i slot -> (i, slot))
  |> List.filter_map (fun (i, slot) -> match slot with None -> Some i | Some _ -> None)

let int_field name cell =
  match Obs.Json.member name cell with
  | Some (Obs.Json.Num x) -> int_of_float x
  | _ -> 0

let sum_field name cells = List.fold_left (fun acc c -> acc + int_field name c) 0 cells

(* Sum one named sub-object of ints (counters, cost) across cells,
   keyed by the first cell's field order. *)
let sum_object field cells =
  let keys =
    match cells with
    | first :: _ -> (
        match Obs.Json.member field first with
        | Some (Obs.Json.Obj fields) -> List.map fst fields
        | _ -> [])
    | [] -> []
  in
  Obs.Json.Obj
    (List.map
       (fun key ->
         let total =
           List.fold_left
             (fun acc cell ->
               match Option.bind (Obs.Json.member field cell) (Obs.Json.member key) with
               | Some (Obs.Json.Num x) -> acc + int_of_float x
               | _ -> acc)
             0 cells
         in
         (key, Obs.Json.int total))
       keys)

let merged_hists cells =
  Obs.Json.Obj
    (List.map
       (fun name ->
         let merged =
           List.fold_left
             (fun acc cell ->
               match Option.bind (Obs.Json.member "hists" cell) (Obs.Json.member name) with
               | Some hj -> (
                   match Obs.Hist.of_json hj with
                   | Ok h -> Obs.Hist.merge acc h
                   | Error msg -> failwith ("Agg.finalize: " ^ msg))
               | None -> acc)
             (Obs.Hist.create ()) cells
         in
         (name, Obs.Hist.to_json merged))
       Shard.hist_names)

let finalize ?(meta = []) t =
  (match missing t with
  | [] -> ()
  | missing ->
      failwith
        (Printf.sprintf "Agg.finalize: missing shard(s) %s"
           (String.concat ", " (List.map string_of_int missing))));
  let cells = Array.to_list (Array.map Option.get t.slots) in
  let strip_hists = function
    | Obs.Json.Obj fields -> Obs.Json.Obj (List.filter (fun (k, _) -> k <> "hists") fields)
    | other -> other
  in
  let exp_requests = sum_field "exp_requests" cells in
  let exp_replies = sum_field "exp_replies" cells in
  let totals =
    Obs.Json.Obj
      [
        ("cells", Obs.Json.int (List.length cells));
        ("detected", Obs.Json.int (sum_field "detected" cells));
        ("recovered", Obs.Json.int (sum_field "recovered" cells));
        ("unrecovered", Obs.Json.int (sum_field "unrecovered" cells));
        ("audit_violations", Obs.Json.int (sum_field "audit_violations" cells));
        ("oracle_violations", Obs.Json.int (sum_field "oracle_violations" cells));
        ("exp_requests", Obs.Json.int exp_requests);
        ("exp_replies", Obs.Json.int exp_replies);
        ( "exp_success_pct",
          if exp_requests = 0 then Obs.Json.Null
          else Obs.Json.Num (100. *. float_of_int exp_replies /. float_of_int exp_requests) );
        ("counters", sum_object "counters" cells);
        ("cost", sum_object "cost" cells);
      ]
  in
  Obs.Json.Obj
    [
      ( "meta",
        Obs.Json.Obj
          ((("schema", Obs.Json.Str "cesrm-sweep/1") :: meta)
          @ [ ("spec", Spec.to_json t.spec) ]) );
      ("cells", Obs.Json.Arr (List.map strip_hists cells));
      ("totals", totals);
      ("hists", merged_hists cells);
    ]
