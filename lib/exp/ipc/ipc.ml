module Frame = struct
  let write oc ~tag payload =
    Printf.fprintf oc "%s %d\n" tag (String.length payload);
    output_string oc payload;
    flush oc

  type buf = Buffer.t

  let create_buf () = Buffer.create 256

  let add buf chunk k = Buffer.add_subbytes buf chunk 0 k

  (* Complete frames currently sitting in [buf], removed from it. *)
  let rec take ?(tags = [ "ok"; "er" ]) buf =
    let contents = Buffer.contents buf in
    match String.index_opt contents '\n' with
    | None -> []
    | Some nl -> (
        let header = String.sub contents 0 nl in
        match String.split_on_char ' ' header with
        | [ tag; len ] when List.mem tag tags -> (
            match int_of_string_opt len with
            | Some len when String.length contents >= nl + 1 + len ->
                let payload = String.sub contents (nl + 1) len in
                Buffer.clear buf;
                Buffer.add_substring buf contents (nl + 1 + len)
                  (String.length contents - nl - 1 - len);
                (tag, payload) :: take ~tags buf
            | Some _ -> []
            | None -> failwith (Printf.sprintf "Ipc.Frame: malformed frame header %S" header))
        | _ -> failwith (Printf.sprintf "Ipc.Frame: malformed frame header %S" header))
end

module Chan = struct
  type t = { ic : in_channel; oc : out_channel }

  let of_fds ~read ~write =
    { ic = Unix.in_channel_of_descr read; oc = Unix.out_channel_of_descr write }

  let send t v =
    Marshal.to_channel t.oc v [];
    flush t.oc

  let recv t = Marshal.from_channel t.ic

  let close t =
    (try close_in_noerr t.ic with _ -> ());
    try close_out_noerr t.oc with _ -> ()

  let fork ~child =
    let down_rd, down_wr = Unix.pipe ~cloexec:false () in
    let up_rd, up_wr = Unix.pipe ~cloexec:false () in
    flush stdout;
    flush stderr;
    match Unix.fork () with
    | 0 ->
        Unix.close down_wr;
        Unix.close up_rd;
        let chan = of_fds ~read:down_rd ~write:up_wr in
        (try child chan
         with e ->
           prerr_endline ("Ipc.Chan worker: " ^ Printexc.to_string e);
           flush stderr;
           Unix._exit 1);
        (* _exit: the parent's at_exit handlers (and its buffered
           output, flushed above before fork) must not run again in the
           child. *)
        Unix._exit 0
    | pid ->
        Unix.close down_rd;
        Unix.close up_wr;
        (of_fds ~read:up_rd ~write:down_wr, pid)

  let reap pid =
    let rec go () =
      match Unix.waitpid [] pid with
      | _ -> ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      | exception Unix.Unix_error (Unix.ECHILD, _, _) -> ()
    in
    go ()
end
