(** Framed-pipe inter-process transport.

    Extracted from [Exp.Pool] so every fork-based parallelism layer —
    the sweep worker pool and the PDES shard workers — speaks the same
    wire protocol. Two facilities:

    - {!Frame}: the pool's tagged text frames
      (["<tag> <len>\n<payload>"]), with the incremental reassembly
      buffer the parent's select loop feeds.
    - {!Chan}: length-prefixed [Marshal] messages over a pipe pair,
      plus a fork helper — the shard workers' control channel, where
      both ends block on whole messages and tags are unnecessary. *)

module Frame : sig
  val write : out_channel -> tag:string -> string -> unit
  (** Emit one ["<tag> <len>\n"] header plus payload, and flush. *)

  type buf
  (** Reassembly state for one pipe: bytes arrive in arbitrary chunks;
      complete frames are taken out as they form. *)

  val create_buf : unit -> buf

  val add : buf -> bytes -> int -> unit
  (** [add buf chunk k] appends the first [k] bytes just read. *)

  val take : ?tags:string list -> buf -> (string * string) list
  (** Complete [(tag, payload)] frames sitting in the buffer, removed
      from it, in arrival order. [tags] is the set of accepted tags
      (default [["ok"; "er"]]).
      @raise Failure on a malformed header. *)
end

module Chan : sig
  type t
  (** One endpoint of a bidirectional message channel. *)

  val of_fds : read:Unix.file_descr -> write:Unix.file_descr -> t

  val send : t -> 'a -> unit
  (** Marshal one value (without closures) and write it, length-prefixed. *)

  val recv : t -> 'a
  (** Block for the next whole message. Unsafe cast, as with [Marshal]:
      both endpoints must agree on the message type.
      @raise End_of_file if the peer closed the pipe. *)

  val close : t -> unit

  val fork : child:(t -> unit) -> t * int
  (** Fork a worker connected by a fresh pipe pair. In the child, runs
      [child] on its endpoint and [_exit]s (never returns); in the
      parent, returns the other endpoint and the child's pid. Buffered
      stdout/stderr are flushed before forking so the child cannot
      replay them. *)

  val reap : int -> unit
  (** [waitpid] swallowing [EINTR]/[ECHILD]. *)
end
