(** A fork-based worker pool with a shard queue over pipes.

    [map f n] evaluates [f 0 .. f (n-1)] across [jobs] forked worker
    processes and returns the results in index order. Each worker loops
    on a command pipe: the parent writes the next shard index, the
    worker runs [f] and streams back a length-prefixed result frame.
    The parent multiplexes result pipes with [select], so a slow shard
    never blocks dispatch to idle workers.

    Failure handling: a worker that exits, is killed, or overruns the
    per-shard [timeout] (the parent SIGKILLs it) is reaped and
    respawned, and its in-flight shard is re-enqueued, up to [retries]
    extra attempts per shard; an [f] that raises is reported as a frame
    (the worker survives) and counts against the same budget. When a
    shard exhausts its budget, the pool tears down and raises
    [Failure].

    With [jobs <= 1], on platforms without [fork], or when [n <= 1],
    the pool degrades to serial in-process evaluation — same results,
    no processes. Because shards are deterministic functions of their
    index, serial and parallel execution are interchangeable. *)

val available : bool
(** Whether [Unix.fork] works here (false on Windows). *)

val default_jobs : unit -> int
(** Detected online CPU count ([getconf _NPROCESSORS_ONLN]), at
    least 1. *)

val resolve_jobs : int option -> int
(** Worker-count policy shared by every [?jobs]-taking entry point:
    [None] and [Some 0] auto-detect via {!default_jobs} ([--jobs 0] is
    the CLI spelling); anything else is clamped to at least 1. *)

val map :
  ?jobs:int ->
  ?timeout:float ->
  ?retries:int ->
  ?on_result:(index:int -> done_:int -> total:int -> unit) ->
  (int -> string) ->
  int ->
  string array
(** [map ?jobs ?timeout ?retries f n]. [jobs] defaults to
    {!default_jobs}, and [0] means the same auto-detection (see
    {!resolve_jobs}); [timeout] (seconds, default none) bounds one
    shard attempt's wall clock; [retries] (default 1) is the number of
    extra attempts after a crash/timeout/exception. [on_result] fires
    in the parent as each shard completes (arrival order).
    @raise Failure when a shard fails beyond its retry budget.
    @raise Invalid_argument on negative [n]. *)

val marshal_map : ?jobs:int -> ?timeout:float -> ?retries:int -> (int -> 'a) -> int -> 'a array
(** {!map} for arbitrary result types, transported with [Marshal]
    (closure flag on — safe because forked workers share the parent's
    code image). Serial fallback skips marshalling entirely. *)
