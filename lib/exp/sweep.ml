let run ?jobs ?shards ?timeout ?retries ?on_result ?meta ?domains spec =
  let cells = Spec.cells spec in
  let agg = Agg.create spec in
  let results =
    Pool.map ?jobs ?timeout ?retries ?on_result
      (fun i -> Shard.run_string ?shards ?domains spec cells.(i))
      (Array.length cells)
  in
  Array.iteri
    (fun index s ->
      match Agg.add_string agg ~index s with
      | Ok () -> ()
      | Error msg -> failwith (Printf.sprintf "Sweep.run: shard %d: %s" index msg))
    results;
  (* Auto-detected parallelism is the one machine-dependent run input;
     record what [--jobs 0] resolved to, but only then — explicit job
     counts keep the artifact a pure function of the spec, which the
     byte-identity tests and CI compare on. *)
  let meta =
    match jobs with
    | Some 0 ->
        Option.value ~default:[] meta
        @ [
            ( "jobs",
              Obs.Json.Obj
                [
                  ("requested", Obs.Json.int 0);
                  ("detected", Obs.Json.int (Pool.resolve_jobs jobs));
                ] );
          ]
    | _ -> Option.value ~default:[] meta
  in
  Agg.finalize ~meta agg
