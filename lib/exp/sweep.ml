let run ?jobs ?timeout ?retries ?on_result ?meta spec =
  let cells = Spec.cells spec in
  let agg = Agg.create spec in
  let results =
    Pool.map ?jobs ?timeout ?retries ?on_result
      (fun i -> Shard.run_string spec cells.(i))
      (Array.length cells)
  in
  Array.iteri
    (fun index s ->
      match Agg.add_string agg ~index s with
      | Ok () -> ()
      | Error msg -> failwith (Printf.sprintf "Sweep.run: shard %d: %s" index msg))
    results;
  Agg.finalize ?meta agg
