let available = not Sys.win32

let default_jobs () = max 1 (Domain.recommended_domain_count ())

(* [jobs = 0] (from [--jobs 0] / [shards = 0]) means "auto-detect from
   the machine"; explicit requests are clamped to at least one. *)
let resolve_jobs = function
  | None -> default_jobs ()
  | Some 0 -> default_jobs ()
  | Some j -> max 1 j

(* -- worker side ----------------------------------------------------- *)

(* One result frame per shard: a "ok <len>\n" / "er <len>\n" header
   followed by <len> payload bytes. "er" carries the printed exception
   of an [f] that raised — the worker itself survives and keeps
   serving; only the shard attempt failed. *)
let worker_loop f cmd_rd res_wr =
  let ic = Unix.in_channel_of_descr cmd_rd in
  let oc = Unix.out_channel_of_descr res_wr in
  let rec loop () =
    match input_line ic with
    | exception End_of_file -> ()
    | "q" -> ()
    | line ->
        let idx = int_of_string (String.trim line) in
        let tag, payload =
          match f idx with
          | s -> ("ok", s)
          | exception e -> ("er", Printexc.to_string e)
        in
        Ipc.Frame.write oc ~tag payload;
        loop ()
  in
  loop ();
  (* _exit: the parent's at_exit handlers (and its buffered output,
     flushed above before fork) must not run again in the child. *)
  Unix._exit 0

(* -- parent side ----------------------------------------------------- *)

type worker = {
  pid : int;
  cmd : Unix.file_descr;  (* parent -> worker: shard indices *)
  res : Unix.file_descr;  (* worker -> parent: result frames *)
  buf : Ipc.Frame.buf;  (* partially received frames *)
  mutable shard : int option;  (* in-flight shard *)
  mutable deadline : float;  (* wall-clock kill time; infinity = none *)
}

let spawn f =
  let cmd_rd, cmd_wr = Unix.pipe () in
  let res_rd, res_wr = Unix.pipe () in
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
      Unix.close cmd_wr;
      Unix.close res_rd;
      worker_loop f cmd_rd res_wr
  | pid ->
      Unix.close cmd_rd;
      Unix.close res_wr;
      {
        pid;
        cmd = cmd_wr;
        res = res_rd;
        buf = Ipc.Frame.create_buf ();
        shard = None;
        deadline = infinity;
      }

let reap pid =
  let rec go () =
    match Unix.waitpid [] pid with
    | _ -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    | exception Unix.Unix_error (Unix.ECHILD, _, _) -> ()
  in
  go ()

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

let take_frames w = Ipc.Frame.take w.buf

let parallel_map ~jobs ~timeout ~retries ~on_result f n =
  let results = Array.make n "" in
  let attempts = Array.make n 0 in
  let pending = Queue.create () in
  for i = 0 to n - 1 do
    Queue.add i pending
  done;
  let done_count = ref 0 in
  let workers = ref [] in
  let failure = ref None in
  let fail msg = if !failure = None then failure := Some msg in
  (* A shard attempt ended without a result (worker crash, timeout kill,
     or an exception frame): re-enqueue within the retry budget. *)
  let shard_failed i reason =
    if attempts.(i) > retries then
      fail
        (Printf.sprintf "Pool: shard %d failed after %d attempt(s): %s" i attempts.(i) reason)
    else Queue.add i pending
  in
  let remove_worker w =
    workers := List.filter (fun w' -> w'.pid <> w.pid) !workers;
    close_quietly w.cmd;
    close_quietly w.res
  in
  (* Forcibly retire a worker (timeout or teardown). *)
  let kill_worker w reason =
    (try Unix.kill w.pid Sys.sigkill with Unix.Unix_error _ -> ());
    reap w.pid;
    remove_worker w;
    Option.iter (fun i -> shard_failed i reason) w.shard
  in
  (* The worker's result pipe hit EOF: it exited (e.g. a shard that
     called [exit]) or was killed externally. *)
  let worker_died w =
    reap w.pid;
    remove_worker w;
    Option.iter (fun i -> shard_failed i "worker process died") w.shard
  in
  let dispatch w =
    match Queue.take_opt pending with
    | None -> ()
    | Some i ->
        attempts.(i) <- attempts.(i) + 1;
        let line = string_of_int i ^ "\n" in
        (match Unix.write_substring w.cmd line 0 (String.length line) with
        | _ ->
            w.shard <- Some i;
            w.deadline <-
              (match timeout with None -> infinity | Some t -> Unix.gettimeofday () +. t)
        | exception Unix.Unix_error ((Unix.EPIPE | Unix.EBADF), _, _) ->
            (* The worker is already gone; give the shard attempt back
               (it never started) and let the EOF path reap it. *)
            attempts.(i) <- attempts.(i) - 1;
            Queue.add i pending)
  in
  let handle_frame w (tag, payload) =
    match w.shard with
    | None -> fail (Printf.sprintf "Pool: unexpected frame from worker %d" w.pid)
    | Some i ->
        w.shard <- None;
        w.deadline <- infinity;
        if tag = "ok" then begin
          results.(i) <- payload;
          incr done_count;
          on_result ~index:i ~done_:!done_count ~total:n
        end
        else shard_failed i ("f raised: " ^ payload)
  in
  let spawn_up_to target =
    while List.length !workers < target && !failure = None do
      match spawn f with
      | w -> workers := w :: !workers
      | exception Unix.Unix_error (e, _, _) ->
          if !workers = [] then fail ("Pool: fork failed: " ^ Unix.error_message e)
          else (* degraded but alive: keep going with fewer workers *) raise Exit
    done
  in
  let prev_sigpipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  Fun.protect
    ~finally:(fun () ->
      (* Teardown: idle workers get a quit command and exit on their
         own; anything still busy (failure path) is killed. *)
      List.iter
        (fun w ->
          if w.shard = None then begin
            (try ignore (Unix.write_substring w.cmd "q\n" 0 2) with Unix.Unix_error _ -> ());
            close_quietly w.cmd;
            close_quietly w.res;
            reap w.pid
          end
          else begin
            (try Unix.kill w.pid Sys.sigkill with Unix.Unix_error _ -> ());
            close_quietly w.cmd;
            close_quietly w.res;
            reap w.pid
          end)
        !workers;
      workers := [];
      ignore (Sys.signal Sys.sigpipe prev_sigpipe))
    (fun () ->
      let target = min jobs n in
      (try spawn_up_to target with Exit -> ());
      let chunk = Bytes.create 65536 in
      while !done_count < n && !failure = None do
        (* Keep the pool at strength: deaths may have thinned it. *)
        if !workers = [] then (try spawn_up_to target with Exit -> ());
        if !workers = [] then fail "Pool: no live workers"
        else begin
          (* Kill pass before dispatch: a timed-out shard re-enqueued
             here must reach an idle worker in this same iteration, or
             an otherwise-idle pool would select forever with nothing
             in flight. *)
          let now = Unix.gettimeofday () in
          List.iter (fun w -> if w.deadline <= now then kill_worker w "timeout") !workers;
          List.iter (fun w -> if w.shard = None then dispatch w) !workers;
          let live = !workers in
          if live <> [] && !failure = None then begin
            let next_deadline =
              List.fold_left (fun acc w -> Float.min acc w.deadline) infinity live
            in
            let select_timeout =
              if next_deadline = infinity then -1.
              else Float.max 0.01 (next_deadline -. Unix.gettimeofday ())
            in
            match Unix.select (List.map (fun w -> w.res) live) [] [] select_timeout with
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
            | readable, _, _ ->
                List.iter
                  (fun w ->
                    if List.mem w.res readable then begin
                      match Unix.read w.res chunk 0 (Bytes.length chunk) with
                      | 0 -> worker_died w
                      | k ->
                          Ipc.Frame.add w.buf chunk k;
                          List.iter (handle_frame w) (take_frames w)
                      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
                    end)
                  live
          end
        end
      done;
      match !failure with Some msg -> failwith msg | None -> results)

let map ?jobs ?timeout ?(retries = 1) ?on_result f n =
  if n < 0 then invalid_arg "Pool.map: negative n";
  let jobs = resolve_jobs jobs in
  let on_result =
    match on_result with Some g -> g | None -> fun ~index:_ ~done_:_ ~total:_ -> ()
  in
  if n = 0 then [||]
  else if (not available) || jobs <= 1 || n <= 1 then
    (* Serial fallback: same shards, same order, no processes. *)
    Array.init n (fun i ->
        let r = f i in
        on_result ~index:i ~done_:(i + 1) ~total:n;
        r)
  else parallel_map ~jobs ~timeout ~retries ~on_result f n

let marshal_map ?jobs ?timeout ?retries f n =
  let jobs = resolve_jobs jobs in
  if (not available) || jobs <= 1 || n <= 1 then Array.init n f
  else begin
    (* Closures are safe to marshal here: a forked worker shares the
       parent's code image, so code pointers stay valid. *)
    let enc i = Marshal.to_string (f i) [ Marshal.Closures ] in
    Array.map (fun s -> Marshal.from_string s 0) (map ~jobs ?timeout ?retries enc n)
  end
