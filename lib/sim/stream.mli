(** Paced event streams for data producers.

    [schedule engine ~n ~at ~fire] runs [fire k] at time [at k] for
    [k = 1 .. n]. Eagerly (the default) every event is scheduled
    upfront — [n] pending timers before the run starts. With
    [~streaming:true] only one timer is ever pending: a seq block is
    reserved ({!Engine.reserve_seqs}) and each firing arms its
    successor with its reserved key, so heap keys — and therefore the
    whole run — are byte-identical to the eager schedule while setup
    cost and queue residency drop from O(n) to O(1).

    Streaming requires [at] to be non-decreasing in [k] and [at (k+1)]
    to be at or after [at k] when evaluated during [fire k] (for a
    jittered send grid: jitter bounded by the pacing period), and [at]
    must consume any randomness in ascending [k] order only — both
    variants evaluate [at 1 .. at n] in order, once each. *)

val schedule :
  ?streaming:bool -> Engine.t -> n:int -> at:(int -> float) -> fire:(int -> unit) -> unit
