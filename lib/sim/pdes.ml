module Stats = struct
  type t = {
    mutable windows : int;
    mutable null_windows : int;
    mutable cross_packets : int;
    mutable barrier_wait_s : float;
  }

  let create () = { windows = 0; null_windows = 0; cross_packets = 0; barrier_wait_s = 0. }

  let publish ?max_shard_events t ~shards ~lookahead registry =
    Obs.Registry.incr ~by:t.windows registry "pdes/windows";
    Obs.Registry.incr ~by:t.null_windows registry "pdes/null_messages";
    Obs.Registry.incr ~by:t.cross_packets registry "pdes/cross_shard_packets";
    Obs.Registry.set_gauge registry "pdes/barrier_wait_s" t.barrier_wait_s;
    Obs.Registry.set_gauge registry "pdes/shards" (float_of_int shards);
    Obs.Registry.set_gauge registry "pdes/lookahead_s" lookahead;
    Option.iter
      (fun m -> Obs.Registry.incr ~by:m registry "pdes/max_shard_events")
      max_shard_events
end

let next_barrier ~lookahead ~nexts ~emit_horizons =
  let g = List.fold_left Float.min infinity nexts in
  let g = List.fold_left Float.min g emit_horizons in
  g +. lookahead

let run_window engine ~barrier ~horizon =
  let rec go () =
    match Engine.next_time engine with
    | None -> infinity
    | Some t when t >= barrier || t > horizon -> t
    | Some _ ->
        ignore (Engine.step engine);
        go ()
  in
  go ()
