(** The discrete-event simulation engine.

    An engine owns a virtual clock and a pending-event queue. Events
    are closures scheduled at absolute or relative virtual times; [run]
    executes them in time order (FIFO among equal times). Timers are
    cancellable: cancellation is O(1) and leaves a tombstone that the
    run loop discards; when tombstones outgrow half the queue the heap
    is compacted in place, so its size stays proportional to the live
    event count no matter how aggressively timers are cancelled.

    The queue is a hierarchical timer wheel layered over an exact
    (time, seq) binary heap (DESIGN.md §12). Timers within the wheel
    horizon (256^3 ticks of 1 ms — about 4.7 hours of virtual time
    ahead of the flushed frontier) insert in O(1); due wheel buckets
    are flushed {e into the heap}, which alone decides firing order —
    so the firing sequence is byte-identical to a pure heap. Past,
    immediate and beyond-horizon timers go straight to the heap, which
    doubles as the overflow level.

    The engine also owns the experiment's root {!Rng.t} so that a
    simulation is a deterministic function of its seed. *)

type t

type timer
(** A handle on a scheduled event. *)

val create : ?seed:int64 -> ?backend:[ `Wheel | `Heap ] -> unit -> t
(** Fresh engine at time 0.0. Default seed is 1. [backend] selects the
    pending-event structure: [`Wheel] (the default) is the
    wheel-over-heap hybrid; [`Heap] bypasses the wheel and inserts
    every timer directly into the heap — the reference oracle the
    differential scheduler tests compare against. Both backends fire
    the same events in the same order at the same times. *)

val now : t -> float
(** Current virtual time, in seconds. *)

val rng : t -> Rng.t
(** The engine's root generator. Hosts should [Rng.split] it. *)

val schedule : t -> after:float -> (unit -> unit) -> timer
(** [schedule t ~after f] runs [f] at [now t +. after]. Negative delays
    are clamped to 0. *)

val schedule_at : t -> at:float -> (unit -> unit) -> timer
(** [schedule_at t ~at f] runs [f] at absolute time [at]; clamped to
    [now t] if already past. *)

val schedule_call : t -> at:float -> (int -> unit) -> int -> unit
(** Allocation-free [schedule_at] for fire-and-forget events: the
    {e shared} closure is dispatched with the immediate [int] argument,
    so scheduling allocates nothing (no per-event closure, no handle).
    Consumes the same (time, seq) key a [schedule_at] would, so mixing
    the two primitives preserves firing order exactly. Not
    cancellable — meant for the network's delivery fan-out, which never
    cancels. *)

val reserve_seqs : t -> int -> int
(** [reserve_seqs t n] reserves the next [n] sequence keys and returns
    the first. A streaming producer replacing an eager
    schedule-everything-upfront loop reserves exactly the block the
    loop would have consumed and attaches each key with
    {!schedule_at_seq} as it goes: every event then carries the same
    (time, seq) heap key as under the eager schedule and [next_seq]
    ends in the same place, so firing order is byte-identical by
    construction.
    @raise Invalid_argument on a negative count. *)

val schedule_at_seq : t -> at:float -> seq:int -> (unit -> unit) -> unit
(** [schedule_at_seq t ~at ~seq f] is [schedule_at] with a
    caller-provided sequence key (from {!reserve_seqs}) instead of
    consuming the engine's counter. Not cancellable. *)

val every_epoch : t -> every:float -> until:float -> (unit -> unit) -> unit
(** [every_epoch t ~every ~until f] runs [f] every [every] seconds of
    virtual time, starting at [now t +. every], as long as the tick
    time is [<= until]. Ticks send no packets and draw no randomness;
    each consumes one sequence key like any scheduled event, shifting
    later keys uniformly without reordering anything. Drives the
    steady-state retirement controller.
    @raise Invalid_argument unless [every > 0]. *)

val epochs_ticked : t -> int
(** Epoch ticks fired over the engine's lifetime. *)

val next_time : t -> float option
(** Fire time of the next live event, without executing it ([None] when
    nothing is pending). Used by the conservative-parallel driver to
    run an engine window-by-window. *)

val cancel : timer -> unit
(** Cancel a pending timer. Cancelling a fired or already-cancelled
    timer is a no-op. *)

val is_pending : timer -> bool
(** True if the timer has neither fired nor been cancelled. *)

val fire_time : timer -> float
(** The virtual time at which the timer fires (or fired / would have
    fired). *)

val pending_events : t -> int
(** Number of live (non-cancelled) events still queued. O(1): the
    engine keeps a counter, incremented on schedule and decremented on
    cancel/fire. *)

val run : ?until:float -> ?max_events:int -> t -> unit
(** Execute events in order until the queue is empty, the clock would
    pass [until], or [max_events] events have run. Events scheduled at
    exactly [until] are executed. *)

val step : t -> bool
(** Execute the single next live event. Returns [false] if none. *)

val events_fired : t -> int
(** Events executed over the engine's lifetime. *)

val events_cancelled : t -> int

val publish_metrics : t -> Obs.Registry.t -> unit
(** Snapshot the engine's lifetime statistics (events fired/cancelled,
    heap compactions, wheel inserts/cascades, heap and slot high-water
    marks, final clock) into the registry under the ["sim/"] prefix.
    Pull-based: call it once at end of run; the running engine
    maintains only plain int counters. *)
