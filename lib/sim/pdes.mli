(** Conservative parallel discrete-event simulation (PDES) primitives.

    The engine-level half of the sharded simulator (DESIGN.md §13):
    barrier algebra and the per-worker window loop. The domain-specific
    half — tree partitioning, cross-shard packet exchange, artifact
    merging — lives with the network ({!Net.Partition}, the shard mode
    of [Net.Network]) and the harness ([Harness.Parallel]).

    The synchronisation protocol is the classic conservative barrier
    scheme: with lookahead [L] (the minimum delay of any cut link, so
    any event executed at time [t] on one shard can affect another no
    earlier than [t +. L]), a coordinator repeatedly computes a global
    lower bound [G] on any still-unexecuted event anywhere, grants every
    worker the window [\[.., G +. L)], and exchanges the cross-shard
    sends each worker produced. Every granted barrier is safe by
    induction: a remote send from inside the previous window lands at
    or after the barrier that window ran to, so replaying it at window
    start never schedules into a shard's past. *)

(** Aggregate synchronisation counters, kept by the coordinator and
    published under the ["pdes/"] registry prefix. *)
module Stats : sig
  type t = {
    mutable windows : int;  (** barrier rounds granted *)
    mutable null_windows : int;  (** rounds exchanging no packets *)
    mutable cross_packets : int;  (** cross-shard packet volume *)
    mutable barrier_wait_s : float;  (** coordinator wall time blocked *)
  }

  val create : unit -> t

  val publish :
    ?max_shard_events:int -> t -> shards:int -> lookahead:float -> Obs.Registry.t -> unit
  (** Record the counters (plus the shard count and lookahead) as
      ["pdes/windows"], ["pdes/null_messages"],
      ["pdes/cross_shard_packets"], ["pdes/barrier_wait_s"],
      ["pdes/shards"] and ["pdes/lookahead_s"]. [max_shard_events]
      (the busiest worker's executed-event count, under
      ["pdes/max_shard_events"]) is the load-balance figure: the
      multi-core speedup ceiling is serial events over it. *)
end

val next_barrier :
  lookahead:float -> nexts:float list -> emit_horizons:float list -> float
(** [next_barrier ~lookahead ~nexts ~emit_horizons] is [G +. L]: [G] is
    the least of every shard's next pending event time ([nexts],
    [infinity] for an idle shard) and of every just-collected emit's
    earliest possible remote effect ([emit_horizons], already
    [t +. L]); no unexecuted event anywhere lies below [G], so every
    shard may safely run strictly past [G] up to [G +. L). The bound
    adapts: an idle stretch is crossed in one round. *)

val run_window : Engine.t -> barrier:float -> horizon:float -> float
(** Execute every pending event with time [< barrier] and [<= horizon]
    (the horizon end is inclusive, matching [Engine.run ~until]).
    Returns the next pending event time after the window, [infinity] if
    none — the worker's contribution to the coordinator's next [G]. *)
