type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }

let copy t = { state = t.state }

(* SplitMix64 output function (Steele, Lea & Flood 2014). *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t = create (bits64 t)

(* The i-th substream seed is what the i-th [split] of a generator
   seeded with [base] would be created from — a pure function of
   (base, i), so shard seeds do not depend on which shards a worker
   happens to execute, or in what order. *)
let substream base i =
  if i < 0 then invalid_arg "Rng.substream: negative index";
  let r = create base in
  let rec go k = if k = 0 then bits64 r else (ignore (bits64 r); go (k - 1)) in
  go i

(* Top 53 bits give a uniform float in [0,1). *)
let unit_float t =
  let x = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float x *. 0x1p-53

let float t b =
  assert (b > 0.);
  unit_float t *. b

let uniform t lo hi =
  if hi <= lo then lo else lo +. (unit_float t *. (hi -. lo))

let int t n =
  assert (n > 0);
  (* Rejection-free for our purposes: modulo bias is < 2^-40 for any n
     we use (n << 2^63). *)
  let x = Int64.shift_right_logical (bits64 t) 1 in
  Int64.to_int (Int64.rem x (Int64.of_int n))

let bool t = Int64.logand (bits64 t) 1L = 1L

let bernoulli t p = unit_float t < p

let exponential t mean =
  let u = unit_float t in
  (* u = 0 would give infinity; nudge. *)
  let u = if u <= 0. then 0x1p-53 else u in
  -.mean *. log u

let log_uniform t lo hi =
  assert (lo > 0. && hi > 0.);
  exp (uniform t (log lo) (log hi))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))
