(** A polymorphic binary min-heap.

    Used as the simulator's pending-event set. Elements are ordered by
    a user-supplied comparison fixed at creation time. All operations
    are the classic O(log n) / O(1) bounds. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
(** Fresh empty heap ordered by [cmp] (minimum first). *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val add : 'a t -> 'a -> unit

val peek : 'a t -> 'a option
(** Minimum element without removing it. *)

val pop : 'a t -> 'a option
(** Remove and return the minimum element. *)

val pop_exn : 'a t -> 'a
(** @raise Invalid_argument on an empty heap. *)

val clear : 'a t -> unit

val filter : 'a t -> ('a -> bool) -> unit
(** Keep only the elements satisfying the predicate and restore the
    heap invariant in place. O(n) — used to compact cancelled-timer
    tombstones out of the event queue. *)

val to_sorted_list : 'a t -> 'a list
(** Non-destructively list all elements in ascending order. O(n log n). *)
