(* The pending-event queue is a binary min-heap over *slot ids* — small
   ints indexing parallel unboxed [times]/[seqs] arrays — rather than a
   heap of timer records. Sift comparisons are primitive float/int
   reads (no closure call, no polymorphic compare) and sift swaps store
   immediate ints (no caml_modify write barrier), which together are
   the bulk of the event core's cost on long traces. Slots are recycled
   through a free stack; a handle keeps its slot's generation ([hseq])
   so a stale cancel on a reused slot is a no-op. *)

type t = {
  mutable clock : float;
  mutable next_seq : int;
  root_rng : Rng.t;
  mutable live : int; (* pending (scheduled, not fired/cancelled) timers *)
  (* Slot tables, indexed by slot id. [actions] holds the physical
     sentinel [no_action] for cancelled / fired / free slots. *)
  mutable times : float array;
  mutable seqs : int array;
  mutable actions : (unit -> unit) array;
  mutable free : int array; (* stack of recycled slot ids *)
  mutable free_top : int;
  mutable n_slots : int; (* slot high-water mark *)
  (* The heap proper: [heap.(0 .. size-1)] are slot ids. *)
  mutable heap : int array;
  mutable size : int;
  (* Lifetime statistics, published via [publish_metrics]: plain int
     stores on paths that already write the adjacent fields, so they
     cost nothing measurable. *)
  mutable n_fired : int;
  mutable n_cancelled : int;
  mutable n_compactions : int;
  mutable max_heap_size : int;
}

and timer = { owner : t; slot : int; hseq : int; htime : float }

let no_action () = ()

let create ?(seed = 1L) () =
  {
    clock = 0.;
    next_seq = 0;
    root_rng = Rng.create seed;
    live = 0;
    times = [||];
    seqs = [||];
    actions = [||];
    free = [||];
    free_top = 0;
    n_slots = 0;
    heap = [||];
    size = 0;
    n_fired = 0;
    n_cancelled = 0;
    n_compactions = 0;
    max_heap_size = 0;
  }

let now t = t.clock

let rng t = t.root_rng

(* Heap order: (time, seq) lexicographic — FIFO among equal times.
   Times are clamped real numbers, never NaN. *)
let[@inline] earlier t a b =
  let ta = t.times.(a) and tb = t.times.(b) in
  if ta < tb then true else if ta > tb then false else t.seqs.(a) < t.seqs.(b)

let rec sift_up t i =
  if i > 0 then begin
    let p = (i - 1) / 2 in
    if earlier t t.heap.(i) t.heap.(p) then begin
      let tmp = t.heap.(i) in
      t.heap.(i) <- t.heap.(p);
      t.heap.(p) <- tmp;
      sift_up t p
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 in
  if l < t.size then begin
    let r = l + 1 in
    let m = if r < t.size && earlier t t.heap.(r) t.heap.(l) then r else l in
    if earlier t t.heap.(m) t.heap.(i) then begin
      let tmp = t.heap.(i) in
      t.heap.(i) <- t.heap.(m);
      t.heap.(m) <- tmp;
      sift_down t m
    end
  end

let grow_slots t =
  let cap = Array.length t.times in
  let cap' = if cap = 0 then 64 else 2 * cap in
  let times' = Array.make cap' 0. and seqs' = Array.make cap' 0 in
  let actions' = Array.make cap' no_action and free' = Array.make cap' 0 in
  Array.blit t.times 0 times' 0 cap;
  Array.blit t.seqs 0 seqs' 0 cap;
  Array.blit t.actions 0 actions' 0 cap;
  Array.blit t.free 0 free' 0 t.free_top;
  t.times <- times';
  t.seqs <- seqs';
  t.actions <- actions';
  t.free <- free'

let alloc_slot t =
  if t.free_top > 0 then begin
    t.free_top <- t.free_top - 1;
    t.free.(t.free_top)
  end
  else begin
    if t.n_slots = Array.length t.times then grow_slots t;
    let s = t.n_slots in
    t.n_slots <- t.n_slots + 1;
    s
  end

let free_slot t s =
  t.actions.(s) <- no_action;
  t.free.(t.free_top) <- s;
  t.free_top <- t.free_top + 1

let heap_push t s =
  if t.size = Array.length t.heap then begin
    let cap' = if t.size = 0 then 64 else 2 * t.size in
    let heap' = Array.make cap' 0 in
    Array.blit t.heap 0 heap' 0 t.size;
    t.heap <- heap'
  end;
  t.heap.(t.size) <- s;
  t.size <- t.size + 1;
  if t.size > t.max_heap_size then t.max_heap_size <- t.size;
  sift_up t (t.size - 1)

(* Pop the root slot; the caller decides whether it is live. *)
let heap_pop t =
  let s = t.heap.(0) in
  t.size <- t.size - 1;
  if t.size > 0 then begin
    t.heap.(0) <- t.heap.(t.size);
    sift_down t 0
  end;
  s

let schedule_at t ~at f =
  let at = if at < t.clock then t.clock else at in
  let s = alloc_slot t in
  t.times.(s) <- at;
  t.seqs.(s) <- t.next_seq;
  t.actions.(s) <- f;
  let handle = { owner = t; slot = s; hseq = t.next_seq; htime = at } in
  t.next_seq <- t.next_seq + 1;
  heap_push t s;
  t.live <- t.live + 1;
  handle

let schedule t ~after f =
  let after = if after < 0. then 0. else after in
  schedule_at t ~at:(t.clock +. after) f

let is_pending timer =
  let t = timer.owner in
  t.seqs.(timer.slot) = timer.hseq && t.actions.(timer.slot) != no_action

(* SRM-style suppression cancels timers constantly, so tombstones can
   outnumber live events by orders of magnitude over a long trace.
   Rebuild the heap in place once dead entries exceed half the queue;
   the O(n) rebuild amortizes against the cancellations that caused it
   and keeps the heap (and its O(log n) operations) proportional to the
   live event count. *)
let compact_if_needed t =
  if t.size > 64 && 2 * (t.size - t.live) > t.size then begin
    let j = ref 0 in
    for i = 0 to t.size - 1 do
      let s = t.heap.(i) in
      if t.actions.(s) != no_action then begin
        t.heap.(!j) <- s;
        incr j
      end
      else free_slot t s
    done;
    t.size <- !j;
    t.n_compactions <- t.n_compactions + 1;
    (* Floyd heapify: O(n) rebuild of the heap invariant. *)
    for i = (t.size / 2) - 1 downto 0 do
      sift_down t i
    done
  end

(* Cancellation leaves a tombstone in the heap; the run loop and the
   compaction pass discard dead slots. *)
let cancel timer =
  let t = timer.owner in
  if t.seqs.(timer.slot) = timer.hseq && t.actions.(timer.slot) != no_action then begin
    t.actions.(timer.slot) <- no_action;
    t.live <- t.live - 1;
    t.n_cancelled <- t.n_cancelled + 1;
    compact_if_needed t
  end

let fire_time timer = timer.htime

let pending_events t = t.live

let step t =
  let rec next () =
    if t.size = 0 then false
    else begin
      let s = heap_pop t in
      let f = t.actions.(s) in
      if f == no_action then begin
        free_slot t s;
        next ()
      end
      else begin
        t.live <- t.live - 1;
        t.n_fired <- t.n_fired + 1;
        t.clock <- t.times.(s);
        free_slot t s;
        f ();
        true
      end
    end
  in
  next ()

(* Discard leading tombstones so the horizon check sees a live event. *)
let rec drop_dead t =
  t.size > 0
  &&
  let s = t.heap.(0) in
  if t.actions.(s) == no_action then begin
    ignore (heap_pop t);
    free_slot t s;
    drop_dead t
  end
  else true

let run ?until ?max_events t =
  let budget = ref (match max_events with None -> max_int | Some n -> n) in
  let continue () =
    !budget > 0
    && drop_dead t
    &&
    match until with None -> true | Some horizon -> t.times.(t.heap.(0)) <= horizon
  in
  while continue () && step t do
    decr budget
  done

let events_fired t = t.n_fired

let events_cancelled t = t.n_cancelled

(* End-of-run snapshot of the engine's lifetime statistics; pull-based,
   so a run without a registry attached pays nothing beyond the int
   stores above. *)
let publish_metrics t registry =
  Obs.Registry.incr ~by:t.n_fired registry "sim/events_fired";
  Obs.Registry.incr ~by:t.n_cancelled registry "sim/events_cancelled";
  Obs.Registry.incr ~by:t.n_compactions registry "sim/heap_compactions";
  Obs.Registry.set_gauge registry "sim/heap_max_size" (float_of_int t.max_heap_size);
  Obs.Registry.set_gauge registry "sim/slots_high_water" (float_of_int t.n_slots);
  Obs.Registry.set_gauge registry "sim/clock_end" t.clock
