(* The pending-event queue is a binary min-heap over *slot ids* — small
   ints indexing parallel unboxed [times]/[seqs] arrays — rather than a
   heap of timer records. Sift comparisons are primitive float/int
   reads (no closure call, no polymorphic compare) and sift swaps store
   immediate ints (no caml_modify write barrier), which together are
   the bulk of the event core's cost on long traces. Slots are recycled
   through a free stack; a handle keeps its slot's generation ([hseq])
   so a stale cancel on a reused slot is a no-op.

   On top of the heap sits a hierarchical timer wheel (the default
   [`Wheel] backend; DESIGN.md §12). SRM-style workloads are dominated
   by bounded-horizon timers — request/repair back-offs, session
   heartbeats, CESRM expedited deadlines — that are scheduled and
   cancelled far more often than they fire; at 10k receivers the
   O(log n) heap insert per schedule is the scheduler's hot path. The
   wheel gives O(1) insert for any timer within its horizon, and keeps
   the heap small (its O(log n) costs scale with the *due* events, not
   the pending ones).

   The wheel NEVER fires events itself: a due bucket is flushed *into
   the heap*, and the heap alone decides firing order by the exact
   (time, seq) lexicographic key. Firing order is therefore
   byte-identical to the pure-heap backend — the wheel only changes
   when an event enters the heap, never when it leaves. Far-future
   timers (beyond the wheel horizon) and past/immediate ones go
   straight into the heap, which doubles as the overflow level and,
   via [~backend:`Heap], as the reference oracle the differential
   tests compare against.

   Geometry: ticks of [granularity] seconds (1 ms), [wheel_slots] = 256
   physical slots per level, 3 levels. Level l spans 256^(l+1) ticks;
   anything past 256^3 ticks (~4.7 h of virtual time) overflows to the
   heap. A frontier tick F (monotone, >= tick(clock)) tracks how far
   the wheel has been flushed. An event with tick T' lands in the
   smallest level l with T' - F <= 256^(l+1); its bucket is
   T' / 256^l, stored at physical slot (T' / 256^l) mod 256. Because
   occupied buckets at level l always lie in the window
   [F/256^l + 1, F/256^l + 256] — exactly 256 consecutive values,
   injective mod 256 — a physical slot never mixes two logical
   buckets. *)

let wheel_bits = 8

let wheel_slots = 1 lsl wheel_bits (* 256 *)

let wheel_mask = wheel_slots - 1

let wheel_levels = 3

(* Horizon in ticks: 256^3. Kept as a float for the overflow test so
   absurdly large times never reach int_of_float. *)
let wheel_span_f = 16777216.

(* Tick granularity is 1 ms; times are converted with the inverse to
   keep the hot path on a multiply. *)
let inv_granularity = 1e3

type t = {
  mutable clock : float;
  mutable next_seq : int;
  root_rng : Rng.t;
  mutable live : int; (* pending (scheduled, not fired/cancelled) timers *)
  (* Slot tables, indexed by slot id. [actions] holds the physical
     sentinel [no_action] for cancelled / fired / free slots. A slot
     holding the [call_marker] sentinel instead dispatches through the
     parallel [calls]/[args] columns — a shared [int -> unit] closure
     plus an immediate argument — so the network's delivery fan-out
     (the dominant scheduler client at scale) costs zero allocations
     per event: no per-event closure, no handle record. *)
  mutable times : float array;
  mutable seqs : int array;
  mutable actions : (unit -> unit) array;
  mutable calls : (int -> unit) array;
  mutable args : int array;
  mutable free : int array; (* stack of recycled slot ids *)
  mutable free_top : int;
  mutable n_slots : int; (* slot high-water mark *)
  (* The heap proper: [heap.(0 .. size-1)] are slot ids. *)
  mutable heap : int array;
  mutable size : int;
  (* The wheel: [buckets.(level * 256 + phys_slot)] heads an intrusive
     singly-linked list through [wheel_next]; -1 terminates. A slot id
     is in at most one structure (wheel xor heap), flagged by
     [in_wheel]. *)
  wheel_enabled : bool;
  buckets : int array;
  mutable wheel_next : int array;
  mutable in_wheel : bool array;
  mutable frontier : int; (* max flushed tick; >= tick(clock) *)
  mutable wheel_live : int; (* live (non-cancelled) wheel residents *)
  (* Lifetime statistics, published via [publish_metrics]: plain int
     stores on paths that already write the adjacent fields, so they
     cost nothing measurable. *)
  mutable n_fired : int;
  mutable n_epochs : int;
  mutable n_cancelled : int;
  mutable n_compactions : int;
  mutable max_heap_size : int;
  mutable n_wheel_inserts : int;
  mutable n_wheel_cascades : int;
}

and timer = { owner : t; slot : int; hseq : int; htime : float }

let no_action () = ()

(* Distinct physical sentinel marking a slot scheduled via
   [schedule_call]. Must never be [no_action]: cancellation, compaction
   and tombstone sweeps all compare against [no_action] and a call slot
   is live until it fires. *)
let call_marker () = ()

let no_call (_ : int) = ()

let create ?(seed = 1L) ?(backend = `Wheel) () =
  {
    clock = 0.;
    next_seq = 0;
    root_rng = Rng.create seed;
    live = 0;
    times = [||];
    seqs = [||];
    actions = [||];
    calls = [||];
    args = [||];
    free = [||];
    free_top = 0;
    n_slots = 0;
    heap = [||];
    size = 0;
    wheel_enabled = (backend = `Wheel);
    buckets = Array.make (wheel_levels * wheel_slots) (-1);
    wheel_next = [||];
    in_wheel = [||];
    frontier = 0;
    wheel_live = 0;
    n_fired = 0;
    n_epochs = 0;
    n_cancelled = 0;
    n_compactions = 0;
    max_heap_size = 0;
    n_wheel_inserts = 0;
    n_wheel_cascades = 0;
  }

let now t = t.clock

let rng t = t.root_rng

(* Heap order: (time, seq) lexicographic — FIFO among equal times.
   Times are clamped real numbers, never NaN. *)
let[@inline] earlier t a b =
  let ta = t.times.(a) and tb = t.times.(b) in
  if ta < tb then true else if ta > tb then false else t.seqs.(a) < t.seqs.(b)

let rec sift_up t i =
  if i > 0 then begin
    let p = (i - 1) / 2 in
    if earlier t t.heap.(i) t.heap.(p) then begin
      let tmp = t.heap.(i) in
      t.heap.(i) <- t.heap.(p);
      t.heap.(p) <- tmp;
      sift_up t p
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 in
  if l < t.size then begin
    let r = l + 1 in
    let m = if r < t.size && earlier t t.heap.(r) t.heap.(l) then r else l in
    if earlier t t.heap.(m) t.heap.(i) then begin
      let tmp = t.heap.(i) in
      t.heap.(i) <- t.heap.(m);
      t.heap.(m) <- tmp;
      sift_down t m
    end
  end

let grow_slots t =
  let cap = Array.length t.times in
  let cap' = if cap = 0 then 64 else 2 * cap in
  let times' = Array.make cap' 0. and seqs' = Array.make cap' 0 in
  let actions' = Array.make cap' no_action and free' = Array.make cap' 0 in
  let calls' = Array.make cap' no_call and args' = Array.make cap' 0 in
  let wheel_next' = Array.make cap' (-1) and in_wheel' = Array.make cap' false in
  Array.blit t.times 0 times' 0 cap;
  Array.blit t.seqs 0 seqs' 0 cap;
  Array.blit t.actions 0 actions' 0 cap;
  Array.blit t.calls 0 calls' 0 cap;
  Array.blit t.args 0 args' 0 cap;
  Array.blit t.free 0 free' 0 t.free_top;
  Array.blit t.wheel_next 0 wheel_next' 0 cap;
  Array.blit t.in_wheel 0 in_wheel' 0 cap;
  t.times <- times';
  t.seqs <- seqs';
  t.actions <- actions';
  t.calls <- calls';
  t.args <- args';
  t.free <- free';
  t.wheel_next <- wheel_next';
  t.in_wheel <- in_wheel'

let alloc_slot t =
  if t.free_top > 0 then begin
    t.free_top <- t.free_top - 1;
    t.free.(t.free_top)
  end
  else begin
    if t.n_slots = Array.length t.times then grow_slots t;
    let s = t.n_slots in
    t.n_slots <- t.n_slots + 1;
    s
  end

let free_slot t s =
  t.actions.(s) <- no_action;
  t.free.(t.free_top) <- s;
  t.free_top <- t.free_top + 1

let heap_push t s =
  if t.size = Array.length t.heap then begin
    let cap' = if t.size = 0 then 64 else 2 * t.size in
    let heap' = Array.make cap' 0 in
    Array.blit t.heap 0 heap' 0 t.size;
    t.heap <- heap'
  end;
  t.heap.(t.size) <- s;
  t.size <- t.size + 1;
  if t.size > t.max_heap_size then t.max_heap_size <- t.size;
  sift_up t (t.size - 1)

(* Pop the root slot; the caller decides whether it is live. *)
let heap_pop t =
  let s = t.heap.(0) in
  t.size <- t.size - 1;
  if t.size > 0 then begin
    t.heap.(0) <- t.heap.(t.size);
    sift_down t 0
  end;
  s

(* Route a pending slot into the wheel or the heap. The tick
   comparison against the frontier is what preserves order: anything
   at or before the flushed frontier must be heap-resident so the heap
   sees the complete set of candidates <= any time it fires. *)
let insert_pending t s =
  if not t.wheel_enabled then heap_push t s
  else begin
    let ft = t.times.(s) *. inv_granularity in
    if ft >= float_of_int t.frontier +. wheel_span_f then heap_push t s (* overflow level *)
    else begin
      let tick = int_of_float ft in
      let delta = tick - t.frontier in
      if delta <= 0 then heap_push t s
      else begin
        let level =
          if delta <= wheel_slots then 0
          else if delta <= wheel_slots * wheel_slots then 1
          else 2
        in
        let idx =
          (level lsl wheel_bits) lor ((tick lsr (wheel_bits * level)) land wheel_mask)
        in
        t.in_wheel.(s) <- true;
        t.wheel_next.(s) <- t.buckets.(idx);
        t.buckets.(idx) <- s;
        t.wheel_live <- t.wheel_live + 1;
        t.n_wheel_inserts <- t.n_wheel_inserts + 1
      end
    end
  end

(* Move every entry of a due level-0 bucket into the heap (dropping
   tombstones), or re-insert a cascading level>=1 bucket one level
   down. Entries keep their original (time, seq) keys, so the heap's
   extraction order is oblivious to when they were flushed. *)
let flush_level0 t idx =
  let s = ref t.buckets.(idx) in
  if !s >= 0 then begin
    t.buckets.(idx) <- -1;
    while !s >= 0 do
      let next = t.wheel_next.(!s) in
      t.in_wheel.(!s) <- false;
      if t.actions.(!s) != no_action then begin
        t.wheel_live <- t.wheel_live - 1;
        heap_push t !s
      end
      else free_slot t !s;
      s := next
    done
  end

let cascade t ~level ~phys =
  let idx = (level lsl wheel_bits) lor phys in
  let s = ref t.buckets.(idx) in
  if !s >= 0 then begin
    t.buckets.(idx) <- -1;
    t.n_wheel_cascades <- t.n_wheel_cascades + 1;
    while !s >= 0 do
      let next = t.wheel_next.(!s) in
      t.in_wheel.(!s) <- false;
      if t.actions.(!s) != no_action then begin
        t.wheel_live <- t.wheel_live - 1;
        insert_pending t !s
      end
      else free_slot t !s;
      s := next
    done
  end

(* Advance the frontier to [target], cascading higher levels at their
   period boundaries and pushing every due level-0 bucket into the
   heap. Tick-by-tick: empty buckets cost one array read, and the
   frontier only ever travels the virtual-time span of the run. *)
let advance_frontier t target =
  while t.frontier < target do
    let f = t.frontier + 1 in
    t.frontier <- f;
    if f land wheel_mask = 0 then begin
      if f land ((wheel_slots * wheel_slots) - 1) = 0 then
        cascade t ~level:2 ~phys:((f lsr (2 * wheel_bits)) land wheel_mask);
      cascade t ~level:1 ~phys:((f lsr wheel_bits) land wheel_mask)
    end;
    flush_level0 t (f land wheel_mask)
  done

let schedule_at t ~at f =
  let at = if at < t.clock then t.clock else at in
  let s = alloc_slot t in
  t.times.(s) <- at;
  t.seqs.(s) <- t.next_seq;
  t.actions.(s) <- f;
  let handle = { owner = t; slot = s; hseq = t.next_seq; htime = at } in
  t.next_seq <- t.next_seq + 1;
  insert_pending t s;
  t.live <- t.live + 1;
  handle

let schedule t ~after f =
  let after = if after < 0. then 0. else after in
  schedule_at t ~at:(t.clock +. after) f

(* Allocation-free scheduling for fire-and-forget events: the shared
   closure [f] is dispatched with the immediate [arg] — no per-event
   closure, no handle. Consumes [next_seq] exactly as [schedule_at]
   does, so interleaving both primitives preserves the engine's
   (time, seq) firing order: a run that swaps one for the other (with
   the same events) fires identically. Not cancellable. *)
let schedule_call t ~at f arg =
  let at = if at < t.clock then t.clock else at in
  let s = alloc_slot t in
  t.times.(s) <- at;
  t.seqs.(s) <- t.next_seq;
  t.actions.(s) <- call_marker;
  t.calls.(s) <- f;
  t.args.(s) <- arg;
  t.next_seq <- t.next_seq + 1;
  insert_pending t s;
  t.live <- t.live + 1

(* Reserve a contiguous block of sequence keys without scheduling
   anything. A streaming producer that replaces an eager
   schedule-everything-upfront loop grabs the exact seq block the loop
   would have consumed, then attaches each reserved key with
   [schedule_at_seq] as it goes: every event carries the same
   (time, seq) heap key as in the eager schedule, and [next_seq] ends
   up in the same place, so the run is byte-identical by
   construction. *)
let reserve_seqs t n =
  if n < 0 then invalid_arg "Engine.reserve_seqs: negative count";
  let base = t.next_seq in
  t.next_seq <- t.next_seq + n;
  base

(* Schedule with a caller-provided seq key (from [reserve_seqs])
   instead of consuming [next_seq]. Not cancellable: reserved keys are
   disjoint from every handle's [hseq] (both are drawn from the same
   monotone counter, by different calls), so slot reuse stays safe. *)
let schedule_at_seq t ~at ~seq f =
  let at = if at < t.clock then t.clock else at in
  let s = alloc_slot t in
  t.times.(s) <- at;
  t.seqs.(s) <- seq;
  t.actions.(s) <- f;
  insert_pending t s;
  t.live <- t.live + 1

(* Engine-level epoch tick: a self-rescheduling callback used by the
   steady-state controller to drive state retirement. Ticks send no
   packets and draw no randomness; each one consumes [next_seq] like
   any other scheduled event, which shifts later seq keys uniformly —
   relative firing order among all other events is unchanged. *)
let every_epoch t ~every ~until f =
  if not (every > 0.) then invalid_arg "Engine.every_epoch: non-positive period";
  let rec arm at =
    ignore
      (schedule_at t ~at (fun () ->
           t.n_epochs <- t.n_epochs + 1;
           f ();
           let at' = at +. every in
           if at' <= until then arm at'))
  in
  let first = t.clock +. every in
  if first <= until then arm first

let epochs_ticked t = t.n_epochs

let is_pending timer =
  let t = timer.owner in
  t.seqs.(timer.slot) = timer.hseq && t.actions.(timer.slot) != no_action

(* SRM-style suppression cancels timers constantly, so tombstones can
   outnumber live events by orders of magnitude over a long trace.
   Rebuild the heap in place once dead entries exceed half the queue;
   the O(n) rebuild amortizes against the cancellations that caused it
   and keeps the heap (and its O(log n) operations) proportional to the
   live event count. Wheel residents are invisible to the heap, so the
   trigger counts only heap-local live entries; dead wheel entries are
   swept when their bucket flushes. *)
let compact_if_needed t =
  let heap_live = t.live - t.wheel_live in
  if t.size > 64 && 2 * (t.size - heap_live) > t.size then begin
    let j = ref 0 in
    for i = 0 to t.size - 1 do
      let s = t.heap.(i) in
      if t.actions.(s) != no_action then begin
        t.heap.(!j) <- s;
        incr j
      end
      else free_slot t s
    done;
    t.size <- !j;
    t.n_compactions <- t.n_compactions + 1;
    (* Floyd heapify: O(n) rebuild of the heap invariant. *)
    for i = (t.size / 2) - 1 downto 0 do
      sift_down t i
    done
  end

(* Cancellation leaves a tombstone; the run loop, the bucket flushes
   and the compaction pass discard dead slots. O(1) in both backends
   (a wheel resident stays chained in its bucket until flushed). *)
let cancel timer =
  let t = timer.owner in
  if t.seqs.(timer.slot) = timer.hseq && t.actions.(timer.slot) != no_action then begin
    t.actions.(timer.slot) <- no_action;
    t.live <- t.live - 1;
    t.n_cancelled <- t.n_cancelled + 1;
    if t.in_wheel.(timer.slot) then t.wheel_live <- t.wheel_live - 1
    else compact_if_needed t
  end

let fire_time timer = timer.htime

let pending_events t = t.live

(* Discard leading tombstones so the horizon check sees a live event. *)
let rec drop_dead t =
  t.size > 0
  &&
  let s = t.heap.(0) in
  if t.actions.(s) == no_action then begin
    ignore (heap_pop t);
    free_slot t s;
    drop_dead t
  end
  else true

(* Establish: the heap root is the globally next live event (no
   wheel resident is due at or before it). Returns false iff nothing
   is pending anywhere. After a flush the root may have changed to an
   earlier flushed event, so loop to the fixed point — the frontier is
   monotone, so at most one extra pass per flush. *)
let rec ensure_next t =
  if drop_dead t then
    if t.wheel_live = 0 then true
    else begin
      let ft = t.times.(t.heap.(0)) *. inv_granularity in
      if ft >= float_of_int t.frontier +. wheel_span_f then begin
        (* Heap root beyond the wheel horizon: flush the whole wheel
           (rare: only when every near-term timer was cancelled). *)
        advance_frontier t (t.frontier + int_of_float wheel_span_f);
        ensure_next t
      end
      else begin
        let target = int_of_float ft in
        if target <= t.frontier then true
        else begin
          advance_frontier t target;
          ensure_next t
        end
      end
    end
  else if t.wheel_live > 0 then begin
    (* Heap empty but the wheel holds live timers: advance until a
       flush lands one in the heap. Terminates because each live
       resident is within the horizon. *)
    while t.size = 0 && t.wheel_live > 0 do
      advance_frontier t (t.frontier + 1)
    done;
    ensure_next t
  end
  else false

let step t =
  if ensure_next t then begin
    let s = heap_pop t in
    let f = t.actions.(s) in
    t.live <- t.live - 1;
    t.n_fired <- t.n_fired + 1;
    t.clock <- t.times.(s);
    if f == call_marker then begin
      (* Read out the call before freeing: the callee may schedule into
         the recycled slot. Clearing the column drops the engine's
         reference to the shared closure's environment. *)
      let g = t.calls.(s) and a = t.args.(s) in
      t.calls.(s) <- no_call;
      free_slot t s;
      g a
    end
    else begin
      free_slot t s;
      f ()
    end;
    true
  end
  else false

let next_time t = if ensure_next t then Some t.times.(t.heap.(0)) else None

let run ?until ?max_events t =
  let budget = ref (match max_events with None -> max_int | Some n -> n) in
  let continue () =
    !budget > 0
    && ensure_next t
    &&
    match until with None -> true | Some horizon -> t.times.(t.heap.(0)) <= horizon
  in
  while continue () && step t do
    decr budget
  done

let events_fired t = t.n_fired

let events_cancelled t = t.n_cancelled

(* End-of-run snapshot of the engine's lifetime statistics; pull-based,
   so a run without a registry attached pays nothing beyond the int
   stores above. *)
let publish_metrics t registry =
  Obs.Registry.incr ~by:t.n_fired registry "sim/events_fired";
  Obs.Registry.incr ~by:t.n_epochs registry "sim/epoch_ticks";
  Obs.Registry.incr ~by:t.n_cancelled registry "sim/events_cancelled";
  Obs.Registry.incr ~by:t.n_compactions registry "sim/heap_compactions";
  Obs.Registry.incr ~by:t.n_wheel_inserts registry "sim/wheel_inserts";
  Obs.Registry.incr ~by:t.n_wheel_cascades registry "sim/wheel_cascades";
  Obs.Registry.set_gauge registry "sim/heap_max_size" (float_of_int t.max_heap_size);
  Obs.Registry.set_gauge registry "sim/slots_high_water" (float_of_int t.n_slots);
  Obs.Registry.set_gauge registry "sim/clock_end" t.clock
