(* Paced event streams: the eager variant schedules every event
   upfront (the classic proto send loop — O(n) pending timers before
   the run starts); the streaming variant keeps exactly one pending
   timer, with each firing arming its successor over a pre-reserved
   seq block. Both produce identical (time, seq) heap keys and leave
   the engine's seq counter in the same place, so a run is
   byte-identical under either — provided the caller's [at] is
   non-decreasing and never in the past when evaluated lazily (for a
   jittered send grid: jitter bounded by the pacing period). *)

let schedule ?(streaming = false) engine ~n ~at ~fire =
  if n > 0 then
    if streaming then begin
      let base = Engine.reserve_seqs engine n in
      let rec arm k =
        Engine.schedule_at_seq engine ~at:(at k) ~seq:(base + k - 1) (fun () ->
            if k < n then arm (k + 1);
            fire k)
      in
      arm 1
    end
    else
      for k = 1 to n do
        ignore (Engine.schedule_at engine ~at:(at k) (fun () -> fire k))
      done
