(** Deterministic pseudo-random number generation.

    The simulator must be reproducible: a run is a pure function of its
    seed. We therefore carry our own SplitMix64 generator rather than
    depending on the global [Random] state. SplitMix64 passes BigCrush
    and is trivially splittable, which lets every host derive an
    independent stream from the experiment seed. *)

type t
(** A mutable generator state. *)

val create : int64 -> t
(** [create seed] makes a fresh generator. Distinct seeds yield
    statistically independent streams. *)

val copy : t -> t
(** [copy t] duplicates the generator state; the copy and the original
    then evolve independently. *)

val split : t -> t
(** [split t] derives a new independent generator from [t], advancing
    [t]. Use one split per host / per experiment leg. *)

val substream : int64 -> int -> int64
(** [substream base i] is the seed the [i]-th (0-based) {!split} of a
    generator created from [base] would start from — a pure function of
    [(base, i)], used to derive per-shard experiment seeds that are
    independent of shard scheduling order.
    @raise Invalid_argument on a negative [i]. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float -> float
(** [float t b] is uniform in [\[0, b)]. [b] must be positive. *)

val uniform : t -> float -> float -> float
(** [uniform t lo hi] is uniform in [\[lo, hi)]. Requires [lo <= hi];
    returns [lo] when the interval is empty. *)

val int : t -> int -> int
(** [int t n] is uniform in [\[0, n)]. [n] must be positive. *)

val bool : t -> bool
(** Fair coin. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val exponential : t -> float -> float
(** [exponential t mean] samples an exponential with the given mean. *)

val log_uniform : t -> float -> float -> float
(** [log_uniform t lo hi] samples log-uniformly in [\[lo, hi)];
    both bounds must be positive. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)
