(* Policy comparison: Section 3.2 sketches two expeditious-pair
   selection policies (most-recent loss, most-frequent loss) and hints
   at more sophisticated ones. This example compares all three shipped
   policies across a few traces.

   Run with:  dune exec examples/policy_comparison.exe
   (CESRM_EXAMPLE_PACKETS shortens the traces — the runtest smoke
   rule uses it to keep the examples fast.) *)

let n_packets =
  match Sys.getenv_opt "CESRM_EXAMPLE_PACKETS" with
  | Some s -> int_of_string s
  | None -> 4000

let avg_norm (res : Harness.Runner.result) =
  let s = Stats.Summary.create () in
  List.iter
    (fun (node, _) ->
      let n = Harness.Runner.normalized_recovery res ~node ~filter:(fun _ -> true) in
      if Stats.Summary.count n > 0 then Stats.Summary.add s (Stats.Summary.mean n))
    res.rtt_to_source;
  Stats.Summary.mean s

let () =
  let traces = [ "RFV960419"; "WRN951113"; "WRN951211"; "WRN951218" ] in
  let rows =
    List.concat_map
      (fun name ->
        let row = Mtrace.Meta.find name in
        let gen = Mtrace.Generator.synthesize ~n_packets row in
        let trace = gen.Mtrace.Generator.trace in
        let att = Harness.Runner.attribution_of_trace trace in
        List.map
          (fun policy ->
            let config = { Cesrm.Host.default_config with policy; cache_capacity = 16 } in
            let res = Harness.Runner.run (Harness.Runner.Cesrm_protocol config) trace att in
            let success =
              100. *. float_of_int res.exp_replies /. float_of_int (max 1 res.exp_requests)
            in
            [
              name;
              Cesrm.Policy.name policy;
              Printf.sprintf "%.2f" (avg_norm res);
              Printf.sprintf "%d" res.exp_requests;
              Printf.sprintf "%.0f%%" success;
            ])
          Cesrm.Policy.all)
      traces
  in
  print_string
    (Stats.Table.render
       ~header:[ "trace"; "policy"; "avg recovery (RTT)"; "expedited rqsts"; "success" ]
       ~rows);
  print_endline
    "The paper evaluates most-recent (simplest: one cached pair suffices) and reports\n\
     it beats most-frequent on the real traces; on synthetic traces the ordering can\n\
     flip when loss patterns alternate quickly."
