(* Streaming playout: the application the paper's introduction
   motivates. A live audio/video receiver buffers each packet for a
   fixed playout delay; a lost packet is useful only if it is repaired
   before its playout deadline. This example measures, across playout
   deadlines, the fraction of lost packets each protocol repairs in
   time — where CESRM's latency advantage turns directly into playback
   quality.

   Run with:  dune exec examples/streaming_playout.exe [TRACE]
   (CESRM_EXAMPLE_PACKETS shortens the trace for the runtest smoke.) *)

let n_packets =
  match Sys.getenv_opt "CESRM_EXAMPLE_PACKETS" with
  | Some s -> int_of_string s
  | None -> 5000

let deadline_grid = [ 0.1; 0.2; 0.3; 0.5; 0.8; 1.2; 2.0 ]

let in_time_fraction (res : Harness.Runner.result) deadline =
  let records = Stats.Recovery.records res.recoveries in
  match records with
  | [] -> 1.
  | _ ->
      let ok =
        List.length
          (List.filter (fun r -> Stats.Recovery.latency r <= deadline) records)
      in
      float_of_int ok /. float_of_int (List.length records)

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "WRN951128" in
  let row = Mtrace.Meta.find name in
  let gen = Mtrace.Generator.synthesize ~n_packets row in
  let trace = gen.Mtrace.Generator.trace in
  let att = Harness.Runner.attribution_of_trace trace in
  let srm = Harness.Runner.run Harness.Runner.Srm_protocol trace att in
  let cesrm =
    Harness.Runner.run (Harness.Runner.Cesrm_protocol Cesrm.Host.default_config) trace att
  in
  let lms = Harness.Runner.run Harness.Runner.Lms_protocol trace att in
  Format.printf
    "Streaming over %s: fraction of lost packets repaired before the playout deadline@.@."
    name;
  let rows =
    List.map
      (fun deadline ->
        [
          Printf.sprintf "%.0f ms" (1000. *. deadline);
          Printf.sprintf "%.1f%%" (100. *. in_time_fraction srm deadline);
          Printf.sprintf "%.1f%%" (100. *. in_time_fraction cesrm deadline);
          Printf.sprintf "%.1f%%" (100. *. in_time_fraction lms deadline);
        ])
      deadline_grid
  in
  print_string
    (Stats.Table.render ~header:[ "playout deadline"; "SRM"; "CESRM"; "LMS" ] ~rows);
  print_endline
    "CESRM turns its ~50% recovery-latency reduction into markedly better playback at\n\
     tight deadlines; LMS is even faster when healthy but needs router support and is\n\
     fragile under churn (see the bench's extension-churn section)."
