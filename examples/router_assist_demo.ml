(* Router-assisted local recovery (Section 3.3): with turning-point
   annotation and subcast, an expedited retransmission reaches only the
   subtree below the turning-point router instead of the whole group.
   This example measures that exposure reduction.

   Run with:  dune exec examples/router_assist_demo.exe
   (CESRM_EXAMPLE_PACKETS shortens the trace for the runtest smoke.) *)

let n_packets =
  match Sys.getenv_opt "CESRM_EXAMPLE_PACKETS" with
  | Some s -> int_of_string s
  | None -> 4000

let run ~router_assist trace att =
  let config = { Cesrm.Host.default_config with router_assist } in
  Harness.Runner.run (Harness.Runner.Cesrm_protocol config) trace att

let () =
  let row = Mtrace.Meta.find "UCB960424" in
  let gen = Mtrace.Generator.synthesize ~n_packets row in
  let trace = gen.Mtrace.Generator.trace in
  let att = Harness.Runner.attribution_of_trace trace in
  let plain = run ~router_assist:false trace att in
  let assisted = run ~router_assist:true trace att in
  let describe label (res : Harness.Runner.result) =
    let erepl_sends =
      Net.Cost.sends res.cost Net.Cost.Exp_reply Net.Cost.Multicast
      + Net.Cost.sends res.cost Net.Cost.Exp_reply Net.Cost.Subcast
    in
    let crossings = Net.Cost.total_crossings res.cost Net.Cost.Exp_reply in
    Format.printf
      "%-12s expedited replies %4d, link crossings %5d (%.1f per reply), unrecovered %d@."
      label erepl_sends crossings
      (if erepl_sends = 0 then 0. else float_of_int crossings /. float_of_int erepl_sends)
      res.unrecovered
  in
  let tree = Mtrace.Trace.tree trace in
  Format.printf "tree: %d nodes, %d links, %d receivers@." (Net.Tree.n_nodes tree)
    (Net.Tree.n_nodes tree - 1) (Net.Tree.n_receivers tree);
  describe "multicast" plain;
  describe "subcast" assisted;
  Format.printf
    "@.Subcast confines each expedited retransmission to the turning point's subtree;@.";
  Format.printf
    "SRM's fallback path still repairs anything the localized reply does not reach.@."
